package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// The live HTTP export surface. An Exporter subscribes to a broker and
// turns the event stream into scrape endpoints:
//
//	/metrics      Prometheus text exposition (hand-rolled, no deps)
//	/debug/vars   expvar JSON (the exporter registers one "lbdyn" var)
//	/debug/pprof  the standard runtime profiles
//
// The exporter is pull-driven: it owns a DropOldest subscription and
// drains it lazily at scrape time, so an exporter that is registered
// but never scraped costs the engine nothing beyond the alloc-free
// ring copies — the zero-alloc steady-state contract holds with the
// handler registered. Between scrapes the bounded ring simply keeps
// the freshest events (drops are counted and exported).

// Exporter converts a broker's event stream into Prometheus and expvar
// scrape state. Construct with NewExporter; safe for concurrent
// scrapes.
type Exporter struct {
	mu  sync.Mutex
	sub *Subscription
	b   *Broker
	buf []Event

	// Latest-value scrape state, updated by draining the subscription.
	window    WindowStats
	hasWindow bool
	shards    []ShardWindowStats
	doms      []DomainWindowStats
	lanes     []int64            // per destination shard, accumulated
	phases    [][NumPhases]int64 // per shard, accumulated
	seqPhases [NumPhases]int64   // engine-level (shard == -1), accumulated
	costs     []ShardStat        // latest per-shard cost window
	recovery  recoveryCounters
	faults    FaultStats // latest cumulative fault counters
	hasFaults bool
	quar      quarantineCounters
	alerts    alertCounters
	alertOn   []AlertEvent // currently-firing alerts, one per domain
	ckpt      checkpointCounters
	hist      trace.Snapshot // latest cumulative lifecycle histograms
	hasHist   bool
}

// alertCounters aggregates the domain SLO alert stream.
type alertCounters struct {
	Fired   int64      `json:"fired"`
	Cleared int64      `json:"cleared"`
	Last    AlertEvent `json:"last"`
}

// checkpointCounters aggregates the engine checkpoint stream.
type checkpointCounters struct {
	Written int64           `json:"written"`
	Last    CheckpointEvent `json:"last"`
}

// quarantineCounters aggregates the flapping-quarantine event stream.
type quarantineCounters struct {
	Entered int64           `json:"entered"`
	Exited  int64           `json:"exited"`
	Last    QuarantineEvent `json:"last"`
}

// recoveryCounters aggregates the recovery-episode event stream.
type recoveryCounters struct {
	Started  int64         `json:"started"`
	Drained  int64         `json:"drained"`
	Censored int64         `json:"censored"`
	Last     RecoveryEvent `json:"last"`
}

// NewExporter subscribes an exporter to the broker (DropOldest, all
// kinds). Returns nil if the broker is already closed. capacity <= 0
// selects the default ring size.
func NewExporter(b *Broker, capacity int) *Exporter {
	sub := b.Subscribe(SubOptions{Capacity: capacity, Policy: DropOldest})
	if sub == nil {
		return nil
	}
	return &Exporter{sub: sub, b: b, buf: make([]Event, 0, 256)}
}

// Close detaches the exporter's subscription.
func (x *Exporter) Close() { x.sub.Close() }

// drainLocked folds every buffered event into the scrape state.
func (x *Exporter) drainLocked() {
	for {
		x.buf = x.sub.Poll(x.buf)
		if len(x.buf) == 0 {
			return
		}
		for i := range x.buf {
			x.applyLocked(&x.buf[i])
		}
	}
}

func (x *Exporter) applyLocked(ev *Event) {
	switch ev.Kind {
	case KindWindow:
		x.window, x.hasWindow = ev.Window, true
	case KindShardWindow:
		s := ev.ShardWindow
		for s.Shard >= len(x.shards) {
			x.shards = append(x.shards, ShardWindowStats{Shard: len(x.shards)})
		}
		x.shards[s.Shard] = s
	case KindDomainWindow:
		d := ev.DomainWindow
		for i := range x.doms {
			if x.doms[i].Level == d.Level && x.doms[i].Domain == d.Domain {
				x.doms[i] = d
				return
			}
		}
		x.doms = append(x.doms, d)
		sort.Slice(x.doms, func(i, j int) bool {
			if x.doms[i].Level != x.doms[j].Level {
				return x.doms[i].Level < x.doms[j].Level
			}
			return x.doms[i].Domain < x.doms[j].Domain
		})
	case KindLanes:
		l := ev.Lane
		for l.Shard >= len(x.lanes) {
			x.lanes = append(x.lanes, 0)
		}
		x.lanes[l.Shard] += l.Inbound
	case KindShardCost:
		c := ev.ShardCost
		for c.Shard >= len(x.costs) {
			x.costs = append(x.costs, ShardStat{})
		}
		x.costs[c.Shard] = c.ShardStat
	case KindPhase:
		p := ev.Phase
		if p.Shard < 0 {
			for i, ns := range p.Nanos {
				x.seqPhases[i] += ns
			}
			return
		}
		for p.Shard >= len(x.phases) {
			x.phases = append(x.phases, [NumPhases]int64{})
		}
		for i, ns := range p.Nanos {
			x.phases[p.Shard][i] += ns
		}
	case KindRecoveryStart:
		x.recovery.Started++
		x.recovery.Last = ev.Recovery
	case KindRecoveryEnd:
		if ev.Recovery.DrainRounds >= 0 {
			x.recovery.Drained++
		} else {
			x.recovery.Censored++
		}
		x.recovery.Last = ev.Recovery
	case KindFaults:
		x.faults, x.hasFaults = ev.Faults, true
	case KindQuarantine:
		if ev.Quarantine.Entered {
			x.quar.Entered++
		} else {
			x.quar.Exited++
		}
		x.quar.Last = ev.Quarantine
	case KindAlert:
		a := ev.Alert
		x.alerts.Last = a
		for i := range x.alertOn {
			if x.alertOn[i].Level == a.Level && x.alertOn[i].Domain == a.Domain {
				if a.Cleared {
					x.alerts.Cleared++
					x.alertOn = append(x.alertOn[:i], x.alertOn[i+1:]...)
				} else {
					x.alerts.Fired++
					x.alertOn[i] = a
				}
				return
			}
		}
		if a.Cleared {
			x.alerts.Cleared++
			return
		}
		x.alerts.Fired++
		x.alertOn = append(x.alertOn, a)
		sort.Slice(x.alertOn, func(i, j int) bool {
			if x.alertOn[i].Level != x.alertOn[j].Level {
				return x.alertOn[i].Level < x.alertOn[j].Level
			}
			return x.alertOn[i].Domain < x.alertOn[j].Domain
		})
	case KindCheckpoint:
		x.ckpt.Written++
		x.ckpt.Last = ev.Checkpoint
	case KindTraceHist:
		x.hist, x.hasHist = ev.TraceHist, true
	}
}

// ServeHTTP renders the Prometheus text exposition — the /metrics
// endpoint. Draining and rendering happen on the scraper's goroutine,
// never the engine's.
func (x *Exporter) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.drainLocked()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	counter("lbdyn_events_published_total", "Events published to the observability broker.")
	fmt.Fprintf(w, "lbdyn_events_published_total %d\n", x.b.Published())
	counter("lbdyn_events_dropped_total", "Events this exporter's bounded ring dropped between scrapes.")
	fmt.Fprintf(w, "lbdyn_events_dropped_total %d\n", x.sub.Dropped())

	if x.hasWindow {
		fw := &x.window
		gauge("lbdyn_window_end_round", "Last round of the most recent fleet metrics window.")
		fmt.Fprintf(w, "lbdyn_window_end_round %d\n", fw.End)
		gauge("lbdyn_overload_frac", "Time-averaged fraction of up resources over threshold in the last window.")
		fmt.Fprintf(w, "lbdyn_overload_frac %g\n", fw.OverloadFrac)
		gauge("lbdyn_migration_rate", "Protocol migrations per round in the last window.")
		fmt.Fprintf(w, "lbdyn_migration_rate %g\n", fw.MigrationRate)
		gauge("lbdyn_rehome_rate", "Churn re-homes plus bounced deliveries per round in the last window.")
		fmt.Fprintf(w, "lbdyn_rehome_rate %g\n", fw.RehomeRate)
		gauge("lbdyn_arrival_rate", "Arriving tasks per round in the last window.")
		fmt.Fprintf(w, "lbdyn_arrival_rate %g\n", fw.ArrivalRate)
		gauge("lbdyn_departure_rate", "Departing tasks per round in the last window.")
		fmt.Fprintf(w, "lbdyn_departure_rate %g\n", fw.DepartureRate)
		gauge("lbdyn_mean_load", "Snapshot mean load over up resources at window end.")
		fmt.Fprintf(w, "lbdyn_mean_load %g\n", fw.MeanLoad)
		gauge("lbdyn_max_load", "Snapshot max load at window end.")
		fmt.Fprintf(w, "lbdyn_max_load %g\n", fw.MaxLoad)
		gauge("lbdyn_p99_load", "Snapshot 99th-percentile load at window end.")
		fmt.Fprintf(w, "lbdyn_p99_load %g\n", fw.P99Load)
		gauge("lbdyn_p99_load_per_speed", "Snapshot 99th-percentile load/speed at window end.")
		fmt.Fprintf(w, "lbdyn_p99_load_per_speed %g\n", fw.P99LoadPerSpeed)
		gauge("lbdyn_in_flight", "Live tasks at window end.")
		fmt.Fprintf(w, "lbdyn_in_flight %d\n", fw.InFlight)
		gauge("lbdyn_in_flight_weight", "Live task weight at window end.")
		fmt.Fprintf(w, "lbdyn_in_flight_weight %g\n", fw.InFlightWeight)
		gauge("lbdyn_up_resources", "Up resources at window end.")
		fmt.Fprintf(w, "lbdyn_up_resources %d\n", fw.UpResources)
	}

	if len(x.shards) > 0 {
		gauge("lbdyn_shard_overload_frac", "Fraction of the shard's up resources over threshold at window end.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_overload_frac{shard=\"%d\"} %g\n", i, x.shards[i].OverloadFrac)
		}
		gauge("lbdyn_shard_arrival_rate", "Arrivals dispatched into the shard per round over the last window.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_arrival_rate{shard=\"%d\"} %g\n", i, x.shards[i].ArrivalRate)
		}
		gauge("lbdyn_shard_departure_rate", "Departures served by the shard per round over the last window.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_departure_rate{shard=\"%d\"} %g\n", i, x.shards[i].DepartureRate)
		}
		gauge("lbdyn_shard_inbound_rate", "Exchange deliveries merged into the shard per round over the last window.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_inbound_rate{shard=\"%d\"} %g\n", i, x.shards[i].InboundRate)
		}
		gauge("lbdyn_shard_mean_load", "Snapshot mean load over the shard's up resources at window end.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_mean_load{shard=\"%d\"} %g\n", i, x.shards[i].MeanLoad)
		}
		gauge("lbdyn_shard_p99_load", "Snapshot 99th-percentile load over the shard's up resources at window end.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_p99_load{shard=\"%d\"} %g\n", i, x.shards[i].P99Load)
		}
		gauge("lbdyn_shard_up_resources", "Up resources the shard owned at window end.")
		for i := range x.shards {
			fmt.Fprintf(w, "lbdyn_shard_up_resources{shard=\"%d\"} %d\n", i, x.shards[i].UpResources)
		}
	}

	if len(x.doms) > 0 {
		gauge("lbdyn_domain_overload_frac", "Fraction of the failure domain's up resources over threshold at window end.")
		for i := range x.doms {
			d := &x.doms[i]
			fmt.Fprintf(w, "lbdyn_domain_overload_frac{level=%q,domain=%q} %g\n", d.Level, d.Name, d.OverloadFrac)
		}
		gauge("lbdyn_domain_mean_load", "Snapshot mean load over the failure domain's up resources at window end.")
		for i := range x.doms {
			d := &x.doms[i]
			fmt.Fprintf(w, "lbdyn_domain_mean_load{level=%q,domain=%q} %g\n", d.Level, d.Name, d.MeanLoad)
		}
		gauge("lbdyn_domain_up_resources", "Up resources in the failure domain at window end.")
		for i := range x.doms {
			d := &x.doms[i]
			fmt.Fprintf(w, "lbdyn_domain_up_resources{level=%q,domain=%q} %d\n", d.Level, d.Name, d.UpResources)
		}
		gauge("lbdyn_domain_down_resources", "Down resources in the failure domain at window end.")
		for i := range x.doms {
			d := &x.doms[i]
			fmt.Fprintf(w, "lbdyn_domain_down_resources{level=%q,domain=%q} %d\n", d.Level, d.Name, d.DownResources)
		}
	}

	if len(x.lanes) > 0 {
		counter("lbdyn_exchange_inbound_total", "Delivery-exchange moves routed into the destination shard's lanes.")
		for j, in := range x.lanes {
			fmt.Fprintf(w, "lbdyn_exchange_inbound_total{shard=\"%d\"} %d\n", j, in)
		}
	}

	if len(x.phases) > 0 || x.seqTotal() > 0 {
		counter("lbdyn_phase_nanos_total", "Wall-clock nanoseconds spent per round-pipeline phase (shard \"seq\" is the engine's sequential sections).")
		for p := PhaseID(0); p < NumPhases; p++ {
			if ns := x.seqPhases[p]; ns > 0 {
				fmt.Fprintf(w, "lbdyn_phase_nanos_total{shard=\"seq\",phase=%q} %d\n", p, ns)
			}
		}
		for i := range x.phases {
			for p := PhaseID(0); p < NumPhases; p++ {
				fmt.Fprintf(w, "lbdyn_phase_nanos_total{shard=\"%d\",phase=%q} %d\n", i, p, x.phases[i][p])
			}
		}
	}

	if len(x.costs) > 0 {
		gauge("lbdyn_shard_cost_nanos", "Measured per-shard phase cost over the last telemetry window.")
		for i := range x.costs {
			fmt.Fprintf(w, "lbdyn_shard_cost_nanos{shard=\"%d\"} %d\n", i, x.costs[i].Nanos)
		}
		gauge("lbdyn_shard_lo", "First resource of the shard's range at the last telemetry report.")
		for i := range x.costs {
			fmt.Fprintf(w, "lbdyn_shard_lo{shard=\"%d\"} %d\n", i, x.costs[i].Lo)
		}
		gauge("lbdyn_shard_hi", "One past the last resource of the shard's range at the last telemetry report.")
		for i := range x.costs {
			fmt.Fprintf(w, "lbdyn_shard_hi{shard=\"%d\"} %d\n", i, x.costs[i].Hi)
		}
	}

	counter("lbdyn_recovery_started_total", "Recovery episodes opened by scripted failures.")
	fmt.Fprintf(w, "lbdyn_recovery_started_total %d\n", x.recovery.Started)
	counter("lbdyn_recovery_drained_total", "Recovery episodes that drained back to their pre-failure baseline.")
	fmt.Fprintf(w, "lbdyn_recovery_drained_total %d\n", x.recovery.Drained)
	counter("lbdyn_recovery_censored_total", "Recovery episodes cut short by the next failure or the run's end.")
	fmt.Fprintf(w, "lbdyn_recovery_censored_total %d\n", x.recovery.Censored)
	gauge("lbdyn_recovery_last_peak_overload", "Peak overload fraction of the most recent recovery episode.")
	fmt.Fprintf(w, "lbdyn_recovery_last_peak_overload %g\n", x.recovery.Last.PeakOverload)

	if x.hasFaults {
		f := &x.faults
		counter("lbdyn_faults_lost_total", "Migration messages lost by the fault layer (entered the retry ledger).")
		fmt.Fprintf(w, "lbdyn_faults_lost_total %d\n", f.Lost)
		counter("lbdyn_faults_delayed_total", "Migration messages delayed by the fault layer.")
		fmt.Fprintf(w, "lbdyn_faults_delayed_total %d\n", f.Delayed)
		counter("lbdyn_faults_duplicated_total", "Duplicate migration copies injected by the fault layer.")
		fmt.Fprintf(w, "lbdyn_faults_duplicated_total %d\n", f.Duplicated)
		counter("lbdyn_faults_deduped_total", "Duplicate or stale deliveries dropped by the dedup table.")
		fmt.Fprintf(w, "lbdyn_faults_deduped_total %d\n", f.Deduped)
		counter("lbdyn_faults_retries_total", "Retry attempts for messages sitting in the in-flight ledger.")
		fmt.Fprintf(w, "lbdyn_faults_retries_total %d\n", f.Retries)
		counter("lbdyn_faults_timeouts_total", "Ledger tasks that hit the retry timeout and re-homed at their source.")
		fmt.Fprintf(w, "lbdyn_faults_timeouts_total %d\n", f.Timeouts)
		counter("lbdyn_faults_partition_blocked_total", "Migrations bounced to their source by a partition cut.")
		fmt.Fprintf(w, "lbdyn_faults_partition_blocked_total %d\n", f.PartitionBlocked)
		counter("lbdyn_faults_bounced_total", "Deliveries bounced off down destinations and re-homed.")
		fmt.Fprintf(w, "lbdyn_faults_bounced_total %d\n", f.Bounced)
		gauge("lbdyn_faults_ledger", "Tasks currently in the in-flight ledger.")
		fmt.Fprintf(w, "lbdyn_faults_ledger %d\n", f.Ledger)
		gauge("lbdyn_faults_ledger_weight", "Total weight currently in the in-flight ledger.")
		fmt.Fprintf(w, "lbdyn_faults_ledger_weight %g\n", f.LedgerWeight)
		gauge("lbdyn_quarantined_resources", "Resources currently held down by the flapping quarantine.")
		fmt.Fprintf(w, "lbdyn_quarantined_resources %d\n", f.Quarantined)
	}
	counter("lbdyn_quarantine_entered_total", "Flapping resources put into quarantine hold-down.")
	fmt.Fprintf(w, "lbdyn_quarantine_entered_total %d\n", x.quar.Entered)
	counter("lbdyn_quarantine_exited_total", "Quarantined resources released after their cool-off.")
	fmt.Fprintf(w, "lbdyn_quarantine_exited_total %d\n", x.quar.Exited)

	counter("lbdyn_alerts_fired_total", "Domain SLO alerts fired (overload over budget for K consecutive windows).")
	fmt.Fprintf(w, "lbdyn_alerts_fired_total %d\n", x.alerts.Fired)
	counter("lbdyn_alerts_cleared_total", "Domain SLO alerts resolved (first window back under budget).")
	fmt.Fprintf(w, "lbdyn_alerts_cleared_total %d\n", x.alerts.Cleared)
	if len(x.alertOn) > 0 {
		gauge("lbdyn_domain_alert_active", "1 while the failure domain's SLO alert is firing.")
		for i := range x.alertOn {
			a := &x.alertOn[i]
			fmt.Fprintf(w, "lbdyn_domain_alert_active{level=%q,domain=%q} 1\n", a.Level, a.Name)
		}
		gauge("lbdyn_domain_alert_overload_frac", "Overload fraction of the window that tripped the firing alert.")
		for i := range x.alertOn {
			a := &x.alertOn[i]
			fmt.Fprintf(w, "lbdyn_domain_alert_overload_frac{level=%q,domain=%q} %g\n", a.Level, a.Name, a.OverloadFrac)
		}
	}

	counter("lbdyn_checkpoints_total", "Engine checkpoints written.")
	fmt.Fprintf(w, "lbdyn_checkpoints_total %d\n", x.ckpt.Written)
	if x.ckpt.Written > 0 {
		gauge("lbdyn_checkpoint_last_round", "Round boundary of the most recent checkpoint.")
		fmt.Fprintf(w, "lbdyn_checkpoint_last_round %d\n", x.ckpt.Last.Round)
		gauge("lbdyn_checkpoint_last_bytes", "Encoded size of the most recent checkpoint.")
		fmt.Fprintf(w, "lbdyn_checkpoint_last_bytes %d\n", x.ckpt.Last.Bytes)
	}

	if x.hasHist {
		writeHistogram(w, "lbdyn_sojourn_rounds", "Rounds from task arrival to departure.", &x.hist.Sojourn)
		writeHistogram(w, "lbdyn_migration_hops", "Migration hops a task made before departing.", &x.hist.Hops)
		writeHistogram(w, "lbdyn_retry_latency_rounds", "Rounds a lost migration spent in the retry ledger before resolving.", &x.hist.RetryLat)
	}
}

// writeHistogram renders one trace.Hist as a Prometheus histogram:
// cumulative le-labelled buckets over the fixed power-of-two ladder,
// a +Inf bucket, and the _sum/_count pair.
func writeHistogram(w io.Writer, name, help string, h *trace.Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range trace.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum)
	}
	cum += h.Counts[trace.NumBuckets-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

func (x *Exporter) seqTotal() int64 {
	var t int64
	for _, ns := range x.seqPhases {
		t += ns
	}
	return t
}

// exporterVars is the expvar snapshot shape ("lbdyn" variable).
type exporterVars struct {
	Published uint64              `json:"published"`
	Dropped   uint64              `json:"dropped"`
	Window    *WindowStats        `json:"window,omitempty"`
	Shards    []ShardWindowStats  `json:"shards,omitempty"`
	Domains   []DomainWindowStats `json:"domains,omitempty"`
	Recovery  recoveryCounters    `json:"recovery"`
	Faults    *FaultStats         `json:"faults,omitempty"`
	Quar      quarantineCounters  `json:"quarantine"`
	Alerts    alertCounters       `json:"alerts"`
	Active    []AlertEvent        `json:"active_alerts,omitempty"`
	Ckpt      checkpointCounters  `json:"checkpoints"`
	Trace     *trace.Snapshot     `json:"trace,omitempty"`
}

// vars drains the subscription and snapshots the expvar view.
func (x *Exporter) vars() exporterVars {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.drainLocked()
	v := exporterVars{
		Published: x.b.Published(),
		Dropped:   x.sub.Dropped(),
		Shards:    append([]ShardWindowStats(nil), x.shards...),
		Domains:   append([]DomainWindowStats(nil), x.doms...),
		Recovery:  x.recovery,
		Quar:      x.quar,
		Alerts:    x.alerts,
		Active:    append([]AlertEvent(nil), x.alertOn...),
		Ckpt:      x.ckpt,
	}
	if x.hasWindow {
		wCopy := x.window
		v.Window = &wCopy
	}
	if x.hasFaults {
		fCopy := x.faults
		v.Faults = &fCopy
	}
	if x.hasHist {
		hCopy := x.hist
		v.Trace = &hCopy
	}
	return v
}

// The expvar package forbids re-publishing a name, so the "lbdyn" var
// is registered once per process and reads whichever exporter is
// current — tests and successive runs can each install their own.
var (
	expvarOnce    sync.Once
	currentExport atomic.Pointer[Exporter]
)

// PublishExpvar makes this exporter the process's "lbdyn" expvar
// source (visible at /debug/vars on any mux serving expvar.Handler).
func (x *Exporter) PublishExpvar() {
	currentExport.Store(x)
	expvarOnce.Do(func() {
		expvar.Publish("lbdyn", expvar.Func(func() any {
			if e := currentExport.Load(); e != nil {
				return e.vars()
			}
			return nil
		}))
	})
}

// Mux assembles the full export surface on one http.ServeMux:
// /metrics (Prometheus text), /debug/vars (expvar, with this
// exporter's "lbdyn" variable published), and /debug/pprof.
func (x *Exporter) Mux() *http.ServeMux {
	x.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", x)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
