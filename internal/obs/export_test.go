package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// publishSample pushes one event of every kind through the broker.
func publishSample(b *Broker) {
	evs := []Event{
		{Kind: KindWindow, Round: 100, Window: WindowStats{
			Start: 0, End: 100, OverloadFrac: 0.25, MeanLoad: 3.5, MaxLoad: 9,
			P99Load: 8, P99LoadPerSpeed: 4, InFlight: 700, UpResources: 64,
		}},
		{Kind: KindShardWindow, Round: 100, ShardWindow: ShardWindowStats{
			Shard: 0, Lo: 0, Hi: 32, Start: 0, End: 100,
			OverloadFrac: 0.5, ArrivalRate: 12, InboundRate: 3, P99Load: 7.5, UpResources: 32,
		}},
		{Kind: KindShardWindow, Round: 100, ShardWindow: ShardWindowStats{
			Shard: 1, Lo: 32, Hi: 64, Start: 0, End: 100,
			OverloadFrac: 0.125, ArrivalRate: 10, UpResources: 32,
		}},
		{Kind: KindDomainWindow, Round: 100, DomainWindow: DomainWindowStats{
			Level: "rack", Domain: 1, Name: "rack1", Start: 0, End: 100,
			OverloadFrac: 0.75, MeanLoad: 5, UpResources: 7, DownResources: 1,
		}},
		{Kind: KindDomainWindow, Round: 100, DomainWindow: DomainWindowStats{
			Level: "rack", Domain: 0, Name: "rack0", Start: 0, End: 100, UpResources: 8,
		}},
		{Kind: KindLanes, Round: 64, Lane: LaneStats{Shard: 0, Inbound: 41}},
		{Kind: KindLanes, Round: 64, Lane: LaneStats{Shard: 1, Inbound: 17}},
		{Kind: KindShardCost, Round: 64, ShardCost: ShardCost{
			Shard: 0, ShardStat: ShardStat{Lo: 0, Hi: 32, Nanos: 123456}}},
		{Kind: KindPhase, Round: 64, Phase: PhaseStats{Shard: 0,
			Nanos: [NumPhases]int64{PhaseService: 900, PhasePropose: 300, PhaseDeliver: 200}}},
		{Kind: KindPhase, Round: 64, Phase: PhaseStats{Shard: -1,
			Nanos: [NumPhases]int64{PhaseArrivals: 400, PhaseTune: 100}}},
		{Kind: KindRecoveryStart, Round: 40, Recovery: RecoveryEvent{
			Round: 40, Downs: 8, EvacTasks: 120, EvacWeight: 240, DrainRounds: -1}},
		{Kind: KindRecoveryEnd, Round: 55, Recovery: RecoveryEvent{
			Round: 40, Downs: 8, EvacTasks: 120, EvacWeight: 240,
			PeakOverload: 0.6, DrainRounds: 15}},
	}
	for i := range evs {
		b.Publish(&evs[i])
	}
}

func scrape(t *testing.T, h http.Handler, path string) string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(body)
}

// TestExporterPrometheus checks the text exposition carries the fleet,
// per-shard, per-domain, lane, phase and recovery series.
func TestExporterPrometheus(t *testing.T) {
	b := NewBroker()
	x := NewExporter(b, 0)
	defer x.Close()
	publishSample(b)

	body := scrape(t, x, "/")
	for _, want := range []string{
		"lbdyn_overload_frac 0.25",
		"lbdyn_p99_load_per_speed 4",
		"lbdyn_up_resources 64",
		`lbdyn_shard_overload_frac{shard="0"} 0.5`,
		`lbdyn_shard_overload_frac{shard="1"} 0.125`,
		`lbdyn_shard_inbound_rate{shard="0"} 3`,
		`lbdyn_shard_p99_load{shard="0"} 7.5`,
		`lbdyn_domain_overload_frac{level="rack",domain="rack0"} 0`,
		`lbdyn_domain_overload_frac{level="rack",domain="rack1"} 0.75`,
		`lbdyn_domain_down_resources{level="rack",domain="rack1"} 1`,
		`lbdyn_exchange_inbound_total{shard="0"} 41`,
		`lbdyn_exchange_inbound_total{shard="1"} 17`,
		`lbdyn_phase_nanos_total{shard="seq",phase="arrivals"} 400`,
		`lbdyn_phase_nanos_total{shard="0",phase="service"} 900`,
		`lbdyn_shard_cost_nanos{shard="0"} 123456`,
		"lbdyn_recovery_started_total 1",
		"lbdyn_recovery_drained_total 1",
		"lbdyn_recovery_censored_total 0",
		"lbdyn_events_dropped_total 0",
		"# TYPE lbdyn_overload_frac gauge",
		"# TYPE lbdyn_phase_nanos_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Domain rows render sorted by (level, domain) regardless of
	// arrival order.
	if i0, i1 := strings.Index(body, `domain="rack0"`), strings.Index(body, `domain="rack1"`); i0 > i1 {
		t.Error("domain series not sorted by domain index")
	}
}

// TestExporterAccumulates: lane and phase series are counters — two
// telemetry windows sum.
func TestExporterAccumulates(t *testing.T) {
	b := NewBroker()
	x := NewExporter(b, 0)
	defer x.Close()
	for i := 0; i < 2; i++ {
		ev := Event{Kind: KindLanes, Round: 64 * (i + 1), Lane: LaneStats{Shard: 0, Inbound: 10}}
		b.Publish(&ev)
		ph := Event{Kind: KindPhase, Round: 64 * (i + 1), Phase: PhaseStats{Shard: 0,
			Nanos: [NumPhases]int64{PhaseService: 5}}}
		b.Publish(&ph)
	}
	body := scrape(t, x, "/")
	if !strings.Contains(body, `lbdyn_exchange_inbound_total{shard="0"} 20`) {
		t.Error("lane counter did not accumulate across telemetry windows")
	}
	if !strings.Contains(body, `lbdyn_phase_nanos_total{shard="0",phase="service"} 10`) {
		t.Error("phase counter did not accumulate across telemetry windows")
	}
}

// TestExporterMux covers the /metrics, expvar and pprof endpoints on
// the assembled mux.
func TestExporterMux(t *testing.T) {
	b := NewBroker()
	x := NewExporter(b, 0)
	defer x.Close()
	publishSample(b)
	mux := x.Mux()

	metrics := scrape(t, mux, "/metrics")
	if !strings.Contains(metrics, "lbdyn_overload_frac 0.25") {
		t.Error("/metrics missing fleet overload series")
	}

	vars := scrape(t, mux, "/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	raw, ok := parsed["lbdyn"]
	if !ok {
		t.Fatal("/debug/vars missing the lbdyn variable")
	}
	var v struct {
		Published uint64 `json:"published"`
		Window    *struct {
			OverloadFrac float64 `json:"overload_frac"`
		} `json:"window"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("lbdyn expvar shape: %v", err)
	}
	if v.Published == 0 || v.Window == nil || v.Window.OverloadFrac != 0.25 {
		t.Errorf("lbdyn expvar = %s, want published > 0 and window.overload_frac 0.25", raw)
	}

	pprofIdx := scrape(t, mux, "/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestExporterSecondInstance: a second exporter (a new run) takes over
// the process-wide expvar slot instead of panicking on re-publish.
func TestExporterSecondInstance(t *testing.T) {
	b1 := NewBroker()
	x1 := NewExporter(b1, 0)
	x1.PublishExpvar()
	x1.Close()
	b1.Close()

	b2 := NewBroker()
	x2 := NewExporter(b2, 0)
	defer x2.Close()
	publishSample(b2)
	x2.PublishExpvar() // must not panic
	v := x2.vars()
	if v.Published == 0 {
		t.Error("second exporter's vars see no events")
	}
}
