package obs

import "sync"

// The bounded ring-buffer pub/sub broker. One Broker serves one run:
// the engine publishes from its sequential round-loop sections, any
// number of subscribers (a CLI debug renderer, the Prometheus
// exporter, a JSONL sink, a live dashboard) each own a fixed-capacity
// ring the publish path copies events into. The publisher NEVER blocks
// and NEVER allocates: a subscriber that falls behind loses events per
// its drop policy, and every loss is counted (Subscription.Dropped),
// so bounded lag is an explicit, observable contract instead of a
// backpressure channel into the round loop.

// DropPolicy says which events a full subscription ring sacrifices.
type DropPolicy uint8

const (
	// DropOldest overwrites the ring's oldest buffered event — the
	// subscriber sees the freshest window of the stream (the default).
	DropOldest DropPolicy = iota
	// DropNewest discards the incoming event — the subscriber sees a
	// contiguous prefix of the stream.
	DropNewest
)

// defaultCapacity sizes subscription rings when SubOptions.Capacity is
// zero: enough for several telemetry cadences of a many-shard run.
const defaultCapacity = 1024

// SubOptions configures one subscription.
type SubOptions struct {
	// Capacity is the ring size in events; 0 selects the default
	// (1024). The ring is allocated once at Subscribe time — the
	// publish path never grows it.
	Capacity int
	// Kinds selects which event kinds the subscription receives; the
	// zero mask selects all kinds.
	Kinds KindMask
	// Policy picks which side of a full ring loses events.
	Policy DropPolicy
}

// Broker fans published events out to its subscriptions. The zero
// value is not usable; construct with NewBroker. Publish is intended
// for a single publisher goroutine (the engine's sequential sections);
// Subscribe/Close and all Subscription methods are safe from any
// goroutine.
type Broker struct {
	mu     sync.Mutex
	subs   []*Subscription
	seq    uint64
	closed bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker { return &Broker{} }

// Subscribe attaches a new subscription. Subscribing mid-run is legal:
// the subscription sees events published after it attached. Returns
// nil if the broker is already closed.
func (b *Broker) Subscribe(o SubOptions) *Subscription {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	s := &Subscription{
		b:      b,
		mask:   o.Kinds,
		policy: o.Policy,
		ring:   make([]Event, capacity),
	}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.subs = append(b.subs, s)
	return s
}

// Subscribers returns the number of attached subscriptions.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Publish assigns the event its sequence number and copies it into
// every matching subscription's ring. It never blocks and never
// allocates; full rings drop per their policy. The event value is
// copied — the caller may reuse it immediately.
func (b *Broker) Publish(ev *Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	for _, s := range b.subs {
		if s.mask.Has(ev.Kind) {
			s.push(ev)
		}
	}
	b.mu.Unlock()
}

// Published returns the total number of events published so far.
func (b *Broker) Published() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// ResumeSeq fast-forwards the publish sequence counter to seq (no-op
// if the broker is already past it). Checkpoint resume uses it so a
// resumed run's event stream continues the numbering the interrupted
// run left off at — concatenating the pre-crash and post-resume
// streams reproduces the uninterrupted stream byte for byte.
func (b *Broker) ResumeSeq(seq uint64) {
	b.mu.Lock()
	if seq > b.seq {
		b.seq = seq
	}
	b.mu.Unlock()
}

// Dropped sums the drop counters over all attached subscriptions.
func (b *Broker) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total uint64
	for _, s := range b.subs {
		total += s.Dropped()
	}
	return total
}

// Close marks the stream complete: no further events will be
// published, and every subscription's blocking Wait returns once its
// buffered events are drained. Idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	subs := b.subs
	b.subs = nil
	b.closed = true
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

// unsubscribe detaches s (called by Subscription.Close).
func (b *Broker) unsubscribe(target *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s == target {
			last := len(b.subs) - 1
			b.subs[i] = b.subs[last]
			b.subs[last] = nil
			b.subs = b.subs[:last]
			return
		}
	}
}

// Subscription is one subscriber's bounded view of the event stream.
// All methods are safe for concurrent use; Poll/Wait are intended for
// a single consumer goroutine.
type Subscription struct {
	b      *Broker
	mask   KindMask
	policy DropPolicy

	mu      sync.Mutex
	cond    *sync.Cond
	ring    []Event
	start   int // index of the oldest buffered event
	n       int // buffered event count
	dropped uint64
	closed  bool
}

// push copies the event into the ring, applying the drop policy when
// full. Called with the broker lock held (publish order is therefore
// identical across subscriptions).
func (s *Subscription) push(ev *Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.dropped++
		if s.policy == DropNewest {
			s.mu.Unlock()
			return
		}
		// DropOldest: overwrite the tail and advance.
		s.ring[s.start] = *ev
		s.start++
		if s.start == len(s.ring) {
			s.start = 0
		}
		s.mu.Unlock()
		s.cond.Signal()
		return
	}
	idx := s.start + s.n
	if idx >= len(s.ring) {
		idx -= len(s.ring)
	}
	s.ring[idx] = *ev
	s.n++
	s.mu.Unlock()
	s.cond.Signal()
}

// drainLocked copies up to cap(buf) buffered events into buf[:0].
func (s *Subscription) drainLocked(buf []Event) []Event {
	buf = buf[:0]
	for s.n > 0 && len(buf) < cap(buf) {
		buf = append(buf, s.ring[s.start])
		s.start++
		if s.start == len(s.ring) {
			s.start = 0
		}
		s.n--
	}
	return buf
}

// Poll non-blockingly moves buffered events into buf (reusing its
// backing array; at most cap(buf) events, so a caller-owned buffer
// keeps the drain allocation-free). An empty result means no events
// were buffered. Call again to keep draining a burst.
func (s *Subscription) Poll(buf []Event) []Event {
	if cap(buf) == 0 {
		buf = make([]Event, 0, 64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainLocked(buf)
}

// Wait blocks until events are available (returning them like Poll) or
// the stream ends; it returns nil once the subscription is closed AND
// every buffered event has been drained — the sink-goroutine loop is
// simply `for evs := sub.Wait(buf); evs != nil; evs = sub.Wait(buf)`.
func (s *Subscription) Wait(buf []Event) []Event {
	if cap(buf) == 0 {
		buf = make([]Event, 0, 64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.n == 0 && s.closed {
		return nil
	}
	return s.drainLocked(buf)
}

// Dropped returns how many events this subscription lost to its
// bounded ring — the lag contract's meter.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Buffered returns the number of events currently waiting in the ring.
func (s *Subscription) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close detaches the subscription from its broker and wakes a blocked
// Wait; buffered events remain drainable. Idempotent.
func (s *Subscription) Close() {
	s.b.unsubscribe(s)
	s.markClosed()
}

func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
