// Package obs is the streaming observability layer of the open-system
// engine: a bounded ring-buffer pub/sub broker (the logbroker pattern)
// carrying typed telemetry events — fleet, per-shard and per-failure-
// domain window statistics, delivery-exchange lane occupancy, per-shard
// phase timings, and failure-recovery episode transitions — plus the
// export surfaces built on top of it (Prometheus text, expvar, a JSONL
// event sink for offline analysis).
//
// The broker decouples subscribers from the engine's round loop: the
// engine publishes snapshot copies from its sequential sections, each
// subscription buffers them in its own bounded ring, and a subscriber
// that falls behind loses events according to an explicit drop policy
// (counted, never blocking the publisher). Publishing a fixed-size
// Event value into pre-sized rings allocates nothing, so the engine's
// two standing invariants survive observation: steady-state rounds
// still allocate 0 B, and — because events are derived from state and
// never feed back into it — replay stays bit-for-bit deterministic for
// any worker count with subscribers attached.
package obs

import "repro/internal/trace"

// Kind discriminates the typed events a Broker carries.
type Kind uint8

const (
	// KindWindow carries the fleet-wide WindowStats of one completed
	// metrics window.
	KindWindow Kind = iota + 1
	// KindShardWindow carries one worker shard's window statistics
	// (snapshot over the shard's resource range plus per-shard traffic
	// rates). One event per shard per window, shard index ascending.
	KindShardWindow
	// KindDomainWindow carries one failure domain's (rack or zone)
	// window snapshot. One event per domain per window, level by level,
	// domain index ascending.
	KindDomainWindow
	// KindLanes carries one destination shard's inbound
	// delivery-exchange move total since the previous telemetry report
	// — the backpressure signal that shows a skewed migration pattern
	// before it serialises the destination merge.
	KindLanes
	// KindShardCost carries one shard's resource range and its
	// accumulated measured phase cost since the previous telemetry
	// report — the measured-cost shard-sizing input.
	KindShardCost
	// KindPhase carries one shard's per-phase wall-clock nanos since
	// the previous telemetry report (Shard == -1 carries the engine's
	// sequential phases: arrivals and the tuner refresh).
	KindPhase
	// KindRecoveryStart marks a scripted-failure round opening a
	// recovery episode.
	KindRecoveryStart
	// KindRecoveryEnd marks a recovery episode closing — drained back
	// to its pre-failure baseline, or censored by the next failure or
	// the run's end.
	KindRecoveryEnd
	// KindFaults carries the message-fault layer's cumulative counters
	// plus the live in-flight ledger level, on the telemetry cadence —
	// the drop/retry/timeout signal next to the lane totals, including
	// the bounce-evacuation count that used to fold silently into the
	// re-home totals.
	KindFaults
	// KindQuarantine marks a flapping-quarantine transition: a machine
	// that flapped past the hysteresis bound entering its cool-off, or
	// rejoining when the cool-off expires.
	KindQuarantine
	// KindAlert marks a domain-level SLO transition: a rack or zone
	// whose per-window overload fraction exceeded the configured budget
	// for K consecutive windows (firing), or dropped back under it
	// (clearing).
	KindAlert
	// KindCheckpoint marks a completed engine checkpoint: the round it
	// captured and the snapshot size.
	KindCheckpoint
	// KindTrace carries one sampled task-lifecycle record (arrival,
	// migration hop, fault episode, departure). Published from the
	// engine's sequential sections in canonical order, so the stream is
	// identical for every worker count.
	KindTrace
	// KindTraceHist carries the cumulative lifecycle histograms
	// (sojourn rounds, hops per task, ledger resolution latency) on the
	// window cadence — the always-on aggregate the Prometheus exporter
	// turns into histogram series.
	KindTraceHist

	numKinds
)

var kindNames = [numKinds]string{
	KindWindow:        "window",
	KindShardWindow:   "shard_window",
	KindDomainWindow:  "domain_window",
	KindLanes:         "lanes",
	KindShardCost:     "shard_cost",
	KindPhase:         "phase",
	KindRecoveryStart: "recovery_start",
	KindRecoveryEnd:   "recovery_end",
	KindFaults:        "faults",
	KindQuarantine:    "quarantine",
	KindAlert:         "alert",
	KindCheckpoint:    "checkpoint",
	KindTrace:         "trace",
	KindTraceHist:     "trace_hist",
}

// String returns the wire name of the kind (the JSONL "kind" field).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// KindMask selects event kinds for a subscription; the zero mask means
// all kinds.
type KindMask uint16

// Mask builds a KindMask selecting exactly the given kinds.
func Mask(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask selects kind k (a zero mask selects
// everything).
func (m KindMask) Has(k Kind) bool { return m == 0 || m&(1<<k) != 0 }

// PhaseID names one timed slice of the engine's round pipeline.
type PhaseID uint8

const (
	// PhaseArrivals is the sequential arrival-placement section
	// (engine-level: reported on the Shard == -1 phase event).
	PhaseArrivals PhaseID = iota
	// PhaseService is the sharded service-and-departures sweep.
	PhaseService
	// PhaseTune is the online threshold refresh (engine-level; the
	// pooled tuner's internal sharding is not broken out).
	PhaseTune
	// PhasePropose is the sharded protocol propose sweep (accepted
	// moves routed into the exchange).
	PhasePropose
	// PhaseDeliver is the sharded destination-merge delivery phase —
	// both protocol deliveries and evacuation deliveries run through
	// it, so its nanos cover both.
	PhaseDeliver
	// PhaseEvac is the sharded evacuation pop-and-route phase of
	// mass-failure rounds.
	PhaseEvac

	// NumPhases sizes per-phase accumulator arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseArrivals: "arrivals",
	PhaseService:  "service",
	PhaseTune:     "tune",
	PhasePropose:  "propose",
	PhaseDeliver:  "deliver",
	PhaseEvac:     "evacuate",
}

// String returns the phase's wire and metric-label name.
func (p PhaseID) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// WindowStats summarises one metrics window of an open-system run.
// Rates are per-round time averages over the window; load figures are
// a snapshot over up resources at the window's last round.
type WindowStats struct {
	// Start, End delimit the round range [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// OverloadFrac is the time-averaged fraction of up resources whose
	// load exceeded their threshold.
	OverloadFrac float64 `json:"overload_frac"`
	// MigrationRate is protocol migrations per round; RehomeRate counts
	// churn re-homes plus bounced deliveries per round.
	MigrationRate float64 `json:"migration_rate"`
	RehomeRate    float64 `json:"rehome_rate"`
	// ArrivalRate / DepartureRate are tasks per round.
	ArrivalRate   float64 `json:"arrival_rate"`
	DepartureRate float64 `json:"departure_rate"`
	// MeanLoad / MaxLoad / P99Load snapshot the load distribution over
	// up resources at the window's last round.
	MeanLoad float64 `json:"mean_load"`
	MaxLoad  float64 `json:"max_load"`
	P99Load  float64 `json:"p99_load"`
	// P99LoadPerSpeed is the 99th percentile of load divided by
	// resource speed — the quantity speed-proportional thresholds
	// equalise on heterogeneous fleets. Equal to P99Load on homogeneous
	// fleets (all speeds 1).
	P99LoadPerSpeed float64 `json:"p99_load_per_speed"`
	// InFlight / InFlightWeight count live tasks and their total weight
	// at the window's end; UpResources is the up count at that round.
	InFlight       int     `json:"in_flight"`
	InFlightWeight float64 `json:"in_flight_weight"`
	UpResources    int     `json:"up_resources"`
}

// ShardWindowStats is the per-worker-shard variant of WindowStats: the
// same window cadence, restricted to one shard's contiguous resource
// range [Lo, Hi). Load figures snapshot the shard's up resources at
// the window's last round; the rates count traffic attributed to the
// shard over the window (arrivals dispatched into it, departures
// served by it, and exchange deliveries — protocol migrations plus
// evacuation re-homes — merged into it). Shard boundaries can move
// mid-window under measured-cost rebalancing; Lo/Hi report the range
// owned at the window's end.
type ShardWindowStats struct {
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Start int `json:"start"`
	End   int `json:"end"`
	// OverloadFrac is the fraction of the shard's up resources over
	// threshold at the window's last round (a snapshot, unlike the
	// fleet window's time average).
	OverloadFrac  float64 `json:"overload_frac"`
	ArrivalRate   float64 `json:"arrival_rate"`
	DepartureRate float64 `json:"departure_rate"`
	// InboundRate is delivery-exchange moves merged into the shard per
	// round: protocol migrations plus evacuation re-homes.
	InboundRate     float64 `json:"inbound_rate"`
	MeanLoad        float64 `json:"mean_load"`
	MaxLoad         float64 `json:"max_load"`
	P99Load         float64 `json:"p99_load"`
	P99LoadPerSpeed float64 `json:"p99_load_per_speed"`
	InFlight        int     `json:"in_flight"`
	InFlightWeight  float64 `json:"in_flight_weight"`
	UpResources     int     `json:"up_resources"`
}

// DomainWindowStats is the per-failure-domain variant of WindowStats:
// one event per rack (level "rack") and per zone (level "zone") per
// window, snapshotting the domain's load at the window's last round —
// the per-domain signal that prices what a rack loss costs.
type DomainWindowStats struct {
	// Level names the domain hierarchy level ("rack", "zone").
	Level string `json:"level"`
	// Domain is the domain's index within its level; Name its label.
	Domain int    `json:"domain"`
	Name   string `json:"name"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
	// OverloadFrac is the fraction of the domain's up resources over
	// threshold at the window's last round (NaN-free: 0 when the whole
	// domain is down).
	OverloadFrac   float64 `json:"overload_frac"`
	MeanLoad       float64 `json:"mean_load"`
	MaxLoad        float64 `json:"max_load"`
	InFlightWeight float64 `json:"in_flight_weight"`
	// UpResources / DownResources count the domain's membership split.
	UpResources   int `json:"up_resources"`
	DownResources int `json:"down_resources"`
}

// LaneStats is one destination shard's inbound exchange occupancy
// since the previous telemetry report.
type LaneStats struct {
	// Shard is the DESTINATION shard index.
	Shard int `json:"shard"`
	// Inbound is the number of moves routed into the shard's lanes
	// (recorded at Route time, before the merge runs).
	Inbound int64 `json:"inbound"`
}

// ShardStat reports one shard's resource range and the wall-clock
// nanos its sharded phases (service, propose, deliver, evacuate)
// consumed since the previous report — the observability surface of
// measured-cost shard sizing.
type ShardStat struct {
	// Lo, Hi delimit the resource range [Lo, Hi) the shard owned.
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Nanos int64 `json:"nanos"`
}

// ShardCost is the event payload wrapping ShardStat with its shard
// index.
type ShardCost struct {
	Shard int `json:"shard"`
	ShardStat
}

// PhaseStats carries one shard's per-phase wall-clock nanos since the
// previous telemetry report. Shard == -1 reports the engine's
// sequential phases (arrivals, tune); shard events carry the sharded
// phases (service, propose, deliver, evacuate).
type PhaseStats struct {
	Shard int              `json:"shard"`
	Nanos [NumPhases]int64 `json:"-"` // serialised per-phase by the JSONL codec
}

// RecoveryEvent describes a failure-recovery episode transition. Start
// events carry the failure round, loss count, evacuation load and
// pre-failure baseline; end events additionally carry the observed
// peak and the drain time (−1 when censored).
type RecoveryEvent struct {
	// Round is the failure round that opened the episode.
	Round int `json:"round"`
	// Downs counts resources a scripted event took down that round.
	Downs int `json:"downs"`
	// EvacTasks / EvacWeight total the failure round's evacuations.
	EvacTasks  int64   `json:"evac_tasks"`
	EvacWeight float64 `json:"evac_weight"`
	// BaselineOverload is the overload fraction of the round before
	// the failure — the level the episode must drain back to.
	BaselineOverload float64 `json:"baseline_overload"`
	// PeakOverload is the episode's worst per-round overload fraction
	// (end events only).
	PeakOverload float64 `json:"peak_overload"`
	// DrainRounds is rounds from failure to baseline (end events only;
	// −1 marks a censored episode).
	DrainRounds int `json:"drain_rounds"`
}

// FaultStats carries the message-fault layer's cumulative counters
// (monotone over the run) plus the in-flight ledger level at the
// report round.
type FaultStats struct {
	// Lost / Delayed / Duplicated count first-send fault draws;
	// Deduped counts duplicate copies dropped on arrival.
	Lost       int64 `json:"lost"`
	Delayed    int64 `json:"delayed"`
	Duplicated int64 `json:"duplicated"`
	Deduped    int64 `json:"deduped"`
	// Retries counts ledger retry attempts; Timeouts counts tasks that
	// gave up and re-homed at their source.
	Retries  int64 `json:"retries"`
	Timeouts int64 `json:"timeouts"`
	// PartitionBlocked counts migrations bounced at a partition cut.
	PartitionBlocked int64 `json:"partition_blocked"`
	// Bounced counts deliveries that landed on a down resource and
	// were evacuated by the engine's bounce step (nonzero even without
	// a fault plan — any churn round can bounce a migration).
	Bounced int64 `json:"bounced"`
	// Quarantined counts quarantine entries so far.
	Quarantined int64 `json:"quarantined"`
	// Ledger / LedgerWeight are the in-flight ledger level (tasks held
	// for retry or delay) at the report round.
	Ledger       int     `json:"ledger"`
	LedgerWeight float64 `json:"ledger_weight"`
}

// QuarantineEvent describes one flapping-quarantine transition.
type QuarantineEvent struct {
	// Resource is the flapping machine.
	Resource int `json:"resource"`
	// Entered is true when the machine enters its cool-off, false when
	// it rejoins.
	Entered bool `json:"entered"`
	// Flaps is the down-transition count that tripped the hysteresis
	// bound (enter events only).
	Flaps int `json:"flaps"`
	// Until is the round the cool-off expires (enter events only).
	Until int `json:"until"`
}

// AlertEvent describes one domain-level SLO transition. An alert
// fires when a domain's per-window overload fraction has exceeded the
// budget for K consecutive windows, and clears on the first window
// back under budget; both transitions publish one event.
type AlertEvent struct {
	// Level / Domain / Name identify the failure domain, matching the
	// DomainWindowStats labelling.
	Level  string `json:"level"`
	Domain int    `json:"domain"`
	Name   string `json:"name"`
	// OverloadFrac is the transition window's overload fraction;
	// Budget the configured limit it is judged against.
	OverloadFrac float64 `json:"overload_frac"`
	Budget       float64 `json:"budget"`
	// Windows counts the consecutive over-budget windows at the
	// transition (the K that tripped it on fire; the streak length the
	// clear ends).
	Windows int `json:"windows"`
	// Cleared is false for a firing alert, true for its resolution.
	Cleared bool `json:"cleared"`
}

// CheckpointEvent marks one completed engine checkpoint.
type CheckpointEvent struct {
	// Round is the boundary the snapshot captured: a resume from it
	// re-enters the loop at exactly this round.
	Round int `json:"round"`
	// Bytes is the encoded snapshot size.
	Bytes int `json:"bytes"`
}

// Event is the broker's fixed-size typed message: Kind selects which
// payload field is meaningful. A union of value structs (no pointers,
// no slices) keeps publishing a single struct copy, so the hot path
// never allocates and a delivered event can never alias live engine
// state.
type Event struct {
	Kind Kind
	// Seq is the broker-assigned publish sequence number (1-based,
	// monotone per broker) — gaps in a subscriber's view measure its
	// bounded-lag drops.
	Seq   uint64
	Round int // round the event describes (window events: End)

	Window       WindowStats       // KindWindow
	ShardWindow  ShardWindowStats  // KindShardWindow
	DomainWindow DomainWindowStats // KindDomainWindow
	Lane         LaneStats         // KindLanes
	ShardCost    ShardCost         // KindShardCost
	Phase        PhaseStats        // KindPhase
	Recovery     RecoveryEvent     // KindRecoveryStart / KindRecoveryEnd
	Faults       FaultStats        // KindFaults
	Quarantine   QuarantineEvent   // KindQuarantine
	Alert        AlertEvent        // KindAlert
	Checkpoint   CheckpointEvent   // KindCheckpoint
	Trace        trace.Record      // KindTrace
	TraceHist    trace.Snapshot    // KindTraceHist
}

// Domains labels every resource with a failure domain on one hierarchy
// level (racks, zones) for per-domain window events. Build one per
// level; recovery.Topology.ObsDomains converts an inventory directly.
type Domains struct {
	// Level names the hierarchy level, e.g. "rack" or "zone".
	Level string
	// Of maps resource → domain index on this level.
	Of []int32
	// Names labels the domains; len(Names) is the domain count and
	// every Of entry must index into it.
	Names []string
}

// Validate checks the labelling covers exactly n resources with
// in-range domain indices.
func (d Domains) Validate(n int) error {
	if d.Level == "" {
		return errString("obs: Domains.Level must be non-empty")
	}
	if len(d.Of) != n {
		return errString("obs: Domains.Of must label every resource")
	}
	if len(d.Names) == 0 {
		return errString("obs: Domains.Names must name at least one domain")
	}
	for _, k := range d.Of {
		if k < 0 || int(k) >= len(d.Names) {
			return errString("obs: Domains.Of entry out of range")
		}
	}
	return nil
}

// errString is a tiny allocation-free error type for validation.
type errString string

func (e errString) Error() string { return string(e) }
