package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadEventsJSONL pins the event-sink reader's contract: arbitrary
// input either parses or returns an error — never a panic — and
// anything that parses survives a write → read roundtrip unchanged
// (the codec is lossless on its own output).
func FuzzReadEventsJSONL(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteEvents(&valid, sampleEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("# comment only\n")
	f.Add(`{"kind":"lanes","seq":1,"round":64,"lane":{"shard":0,"inbound":5}}` + "\n")
	f.Add(`{"kind":"phase","round":64,"phase":{"shard":-1,"arrivals":400,"tune":100}}` + "\n")
	f.Add(`{"kind":"recovery_end","round":55,"recovery":{"round":40,"downs":8,"drain_rounds":15}}` + "\n")
	f.Add(`{"kind":"window","round":1}`)
	f.Add(`{"kind":"nope","round":1,"lane":{}}`)
	f.Add(`{"kind":"lanes","round":1,"lane":{"shard":0},"window":{}}`)
	f.Add("{not json}\n\x00\xff")
	f.Add(`{"kind":"domain_window","round":9,"domain_window":{"level":"zone","domain":0,"name":"z0"}}`)

	f.Fuzz(func(t *testing.T, in string) {
		evs, err := ReadEvents(strings.NewReader(in))
		if err != nil {
			return // rejected cleanly
		}
		var out bytes.Buffer
		if err := WriteEvents(&out, evs); err != nil {
			t.Fatalf("WriteEvents rejects events ReadEvents accepted: %v", err)
		}
		again, err := ReadEvents(&out)
		if err != nil {
			t.Fatalf("re-read of re-encoded events fails: %v", err)
		}
		if len(evs) == 0 {
			evs = nil
		}
		if !reflect.DeepEqual(again, evs) {
			t.Fatalf("roundtrip not stable:\nfirst  %+v\nsecond %+v", evs, again)
		}
	})
}
