package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindWindow, Seq: 1, Round: 100, Window: WindowStats{
			Start: 0, End: 100, OverloadFrac: 0.25, MigrationRate: 1.5,
			MeanLoad: 3.25, MaxLoad: 9, P99Load: 8, P99LoadPerSpeed: 4,
			InFlight: 700, InFlightWeight: 1234.5, UpResources: 64,
		}},
		{Kind: KindShardWindow, Seq: 2, Round: 100, ShardWindow: ShardWindowStats{
			Shard: 1, Lo: 32, Hi: 64, Start: 0, End: 100,
			OverloadFrac: 0.5, ArrivalRate: 12, DepartureRate: 11.5,
			InboundRate: 3, MeanLoad: 4, MaxLoad: 9, P99Load: 8,
			P99LoadPerSpeed: 8, InFlight: 350, InFlightWeight: 617.25, UpResources: 32,
		}},
		{Kind: KindDomainWindow, Seq: 3, Round: 100, DomainWindow: DomainWindowStats{
			Level: "rack", Domain: 2, Name: "rack2", Start: 0, End: 100,
			OverloadFrac: 0.125, MeanLoad: 2, MaxLoad: 5, InFlightWeight: 16,
			UpResources: 8, DownResources: 0,
		}},
		{Kind: KindLanes, Seq: 4, Round: 64, Lane: LaneStats{Shard: 3, Inbound: 41}},
		{Kind: KindShardCost, Seq: 5, Round: 64, ShardCost: ShardCost{
			Shard: 2, ShardStat: ShardStat{Lo: 64, Hi: 96, Nanos: 987654}}},
		{Kind: KindPhase, Seq: 6, Round: 64, Phase: PhaseStats{Shard: 0,
			Nanos: [NumPhases]int64{PhaseService: 900, PhasePropose: 300,
				PhaseDeliver: 200, PhaseEvac: 50}}},
		{Kind: KindPhase, Seq: 7, Round: 64, Phase: PhaseStats{Shard: -1,
			Nanos: [NumPhases]int64{PhaseArrivals: 400, PhaseTune: 100}}},
		{Kind: KindRecoveryStart, Seq: 8, Round: 40, Recovery: RecoveryEvent{
			Round: 40, Downs: 8, EvacTasks: 120, EvacWeight: 240.5,
			BaselineOverload: 0.1, DrainRounds: -1}},
		{Kind: KindRecoveryEnd, Seq: 9, Round: 55, Recovery: RecoveryEvent{
			Round: 40, Downs: 8, EvacTasks: 120, EvacWeight: 240.5,
			BaselineOverload: 0.1, PeakOverload: 0.6, DrainRounds: 15}},
	}
}

// TestEventsJSONLRoundtrip: write → read reproduces every kind
// exactly.
func TestEventsJSONLRoundtrip(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := WriteEvents(&buf, want); err != nil {
		t.Fatalf("WriteEvents: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(want) {
		t.Fatalf("wrote %d lines for %d events", n, len(want))
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestEventsJSONLWireShape pins the line format offline tooling parses.
func TestEventsJSONLWireShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, sampleEvents()[:1]); err != nil {
		t.Fatalf("WriteEvents: %v", err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{
		`"kind":"window"`, `"seq":1`, `"round":100`,
		`"overload_frac":0.25`, `"p99_load_per_speed":4`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("wire line missing %s:\n%s", want, line)
		}
	}
	if strings.Contains(line, "shard_window") {
		t.Errorf("window line leaks another kind's payload:\n%s", line)
	}
}

// TestReadEventsComments: blank lines and comments are skipped.
func TestReadEventsComments(t *testing.T) {
	in := "# header comment\n\n" +
		`{"kind":"lanes","seq":1,"round":64,"lane":{"shard":0,"inbound":5}}` + "\n"
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(evs) != 1 || evs[0].Lane.Inbound != 5 {
		t.Fatalf("got %+v, want one lane event", evs)
	}
}

// TestReadEventsErrors: malformed input fails with a line number, not
// a panic.
func TestReadEventsErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad json", "{not json}", "line 1"},
		{"unknown kind", `{"kind":"nope","round":1,"lane":{"shard":0,"inbound":1}}`, `unknown kind "nope"`},
		{"unknown field", `{"kind":"lanes","round":1,"lane":{"shard":0,"inbound":1},"extra":1}`, "line 1"},
		{"no payload", `{"kind":"lanes","round":1}`, "exactly one payload"},
		{"two payloads", `{"kind":"lanes","round":1,"lane":{"shard":0,"inbound":1},"window":{}}`, "carries"},
		{"mismatched payload", `{"kind":"window","round":1,"lane":{"shard":0,"inbound":1}}`, "carries"},
		{"trailing data", `{"kind":"lanes","round":1,"lane":{"shard":0,"inbound":1}} {"x":1}`, "trailing"},
		{"second line", "{\"kind\":\"lanes\",\"round\":1,\"lane\":{\"shard\":0,\"inbound\":1}}\n{bad}", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEvents(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("ReadEvents accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSinkPumpsToWriter: end-to-end broker → sink goroutine → JSONL →
// ReadEvents.
func TestSinkPumpsToWriter(t *testing.T) {
	b := NewBroker()
	// Close joins the pump goroutine, so reading buf afterwards is
	// race-free without extra locking.
	var buf bytes.Buffer
	sink := NewSink(&buf, b, SubOptions{Capacity: 64})
	if sink == nil {
		t.Fatal("NewSink returned nil on open broker")
	}
	want := sampleEvents()
	for i := range want {
		ev := want[i]
		ev.Seq = 0 // broker assigns
		b.Publish(&ev)
	}
	b.Close()
	if err := sink.Close(); err != nil {
		t.Fatalf("sink.Close: %v", err)
	}
	got, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents of sink output: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("sink wrote %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, got[i].Seq, i+1)
		}
		want[i].Seq = got[i].Seq
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestSinkCloseBeforeBroker: closing the sink mid-run detaches cleanly
// and flushes what was buffered.
func TestSinkCloseBeforeBroker(t *testing.T) {
	b := NewBroker()
	var buf bytes.Buffer
	sink := NewSink(&buf, b, SubOptions{Capacity: 64, Kinds: Mask(KindLanes)})
	ev := Event{Kind: KindLanes, Round: 1, Lane: LaneStats{Shard: 0, Inbound: 9}}
	b.Publish(&ev)
	win := Event{Kind: KindWindow, Round: 1}
	b.Publish(&win) // filtered out by the mask
	if err := sink.Close(); err != nil {
		t.Fatalf("sink.Close: %v", err)
	}
	got, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(got) != 1 || got[0].Kind != KindLanes {
		t.Fatalf("got %+v, want exactly the lane event", got)
	}
	b.Close()
}
