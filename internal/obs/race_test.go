//go:build race

package obs

// raceEnabled reports that this test binary runs under the race
// detector: allocation assertions are skipped there, since the
// instrumented runtime's bookkeeping shows up as spurious allocs. The
// zero-alloc contracts are enforced by the regular CI test job.
const raceEnabled = true
