package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/trace"
)

// The JSONL event sink: one event object per line, for offline
// analysis of a run's telemetry stream. The wire format names the kind
// and carries exactly one payload object under the kind's field:
//
//	{"kind":"window","seq":12,"round":100,"window":{"start":0,...}}
//	{"kind":"phase","seq":13,"round":64,"phase":{"shard":0,"service":812345,...}}
//
// WriteEvents/ReadEvents are the symmetric codec; Sink pumps a
// subscription to an io.Writer on its own goroutine (the engine never
// blocks on the file — a slow disk shows up as counted drops, not
// backpressure).

// wireEvent is the JSONL line shape. Payload fields are pointers so
// exactly the kind's payload is present on the wire, and so the reader
// can tell a missing payload from a zero one.
type wireEvent struct {
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	Round int    `json:"round"`

	Window       *WindowStats       `json:"window,omitempty"`
	ShardWindow  *ShardWindowStats  `json:"shard_window,omitempty"`
	DomainWindow *DomainWindowStats `json:"domain_window,omitempty"`
	Lane         *LaneStats         `json:"lane,omitempty"`
	ShardCost    *ShardCost         `json:"shard_cost,omitempty"`
	Phase        *wirePhase         `json:"phase,omitempty"`
	Recovery     *RecoveryEvent     `json:"recovery,omitempty"`
	Faults       *FaultStats        `json:"faults,omitempty"`
	Quarantine   *QuarantineEvent   `json:"quarantine,omitempty"`
	Alert        *AlertEvent        `json:"alert,omitempty"`
	Checkpoint   *CheckpointEvent   `json:"checkpoint,omitempty"`
	Trace        *trace.Record      `json:"trace,omitempty"`
	TraceHist    *trace.Snapshot    `json:"trace_hist,omitempty"`
}

// wirePhase flattens a PhaseStats nanos array into named per-phase
// fields, so offline tooling never depends on PhaseID ordering.
type wirePhase struct {
	Shard    int   `json:"shard"`
	Arrivals int64 `json:"arrivals"`
	Service  int64 `json:"service"`
	Tune     int64 `json:"tune"`
	Propose  int64 `json:"propose"`
	Deliver  int64 `json:"deliver"`
	Evacuate int64 `json:"evacuate"`
}

func toWirePhase(p PhaseStats) *wirePhase {
	return &wirePhase{
		Shard:    p.Shard,
		Arrivals: p.Nanos[PhaseArrivals],
		Service:  p.Nanos[PhaseService],
		Tune:     p.Nanos[PhaseTune],
		Propose:  p.Nanos[PhasePropose],
		Deliver:  p.Nanos[PhaseDeliver],
		Evacuate: p.Nanos[PhaseEvac],
	}
}

func fromWirePhase(p *wirePhase) PhaseStats {
	ps := PhaseStats{Shard: p.Shard}
	ps.Nanos[PhaseArrivals] = p.Arrivals
	ps.Nanos[PhaseService] = p.Service
	ps.Nanos[PhaseTune] = p.Tune
	ps.Nanos[PhasePropose] = p.Propose
	ps.Nanos[PhaseDeliver] = p.Deliver
	ps.Nanos[PhaseEvac] = p.Evacuate
	return ps
}

// toWire converts one event to its line shape.
func toWire(ev *Event) (wireEvent, error) {
	w := wireEvent{Kind: ev.Kind.String(), Seq: ev.Seq, Round: ev.Round}
	switch ev.Kind {
	case KindWindow:
		p := ev.Window
		w.Window = &p
	case KindShardWindow:
		p := ev.ShardWindow
		w.ShardWindow = &p
	case KindDomainWindow:
		p := ev.DomainWindow
		w.DomainWindow = &p
	case KindLanes:
		p := ev.Lane
		w.Lane = &p
	case KindShardCost:
		p := ev.ShardCost
		w.ShardCost = &p
	case KindPhase:
		w.Phase = toWirePhase(ev.Phase)
	case KindRecoveryStart, KindRecoveryEnd:
		p := ev.Recovery
		w.Recovery = &p
	case KindFaults:
		p := ev.Faults
		w.Faults = &p
	case KindQuarantine:
		p := ev.Quarantine
		w.Quarantine = &p
	case KindAlert:
		p := ev.Alert
		w.Alert = &p
	case KindCheckpoint:
		p := ev.Checkpoint
		w.Checkpoint = &p
	case KindTrace:
		p := ev.Trace
		w.Trace = &p
	case KindTraceHist:
		p := ev.TraceHist
		w.TraceHist = &p
	default:
		return w, fmt.Errorf("obs: cannot encode event of unknown kind %d", ev.Kind)
	}
	return w, nil
}

// WriteEvents encodes events as JSONL, one object per line.
func WriteEvents(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		we, err := toWire(&evs[i])
		if err != nil {
			return err
		}
		if err := enc.Encode(we); err != nil {
			return fmt.Errorf("obs: events jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSONL event stream written by WriteEvents (or by
// hand): blank lines and '#' comments are skipped, unknown fields and
// unknown kinds are errors, and every error carries its line number.
// Malformed input returns an error — never a panic — which the fuzz
// harness pins.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var we wireEvent
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&we); err != nil {
			return nil, fmt.Errorf("obs: events jsonl line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("obs: events jsonl line %d: trailing data after the event object", line)
		}
		ev, err := fromWire(&we)
		if err != nil {
			return nil, fmt.Errorf("obs: events jsonl line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: events jsonl: %w", err)
	}
	return evs, nil
}

// fromWire converts one line shape back to an event, checking that the
// payload present matches the declared kind.
func fromWire(we *wireEvent) (Event, error) {
	k, ok := KindFromString(we.Kind)
	if !ok {
		return Event{}, fmt.Errorf("unknown kind %q", we.Kind)
	}
	ev := Event{Kind: k, Seq: we.Seq, Round: we.Round}
	payloads := 0
	if we.Window != nil {
		payloads++
		ev.Window = *we.Window
		if k != KindWindow {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "window")
		}
	}
	if we.ShardWindow != nil {
		payloads++
		ev.ShardWindow = *we.ShardWindow
		if k != KindShardWindow {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "shard_window")
		}
	}
	if we.DomainWindow != nil {
		payloads++
		ev.DomainWindow = *we.DomainWindow
		if k != KindDomainWindow {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "domain_window")
		}
	}
	if we.Lane != nil {
		payloads++
		ev.Lane = *we.Lane
		if k != KindLanes {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "lane")
		}
	}
	if we.ShardCost != nil {
		payloads++
		ev.ShardCost = *we.ShardCost
		if k != KindShardCost {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "shard_cost")
		}
	}
	if we.Phase != nil {
		payloads++
		ev.Phase = fromWirePhase(we.Phase)
		if k != KindPhase {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "phase")
		}
	}
	if we.Recovery != nil {
		payloads++
		ev.Recovery = *we.Recovery
		if k != KindRecoveryStart && k != KindRecoveryEnd {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "recovery")
		}
	}
	if we.Faults != nil {
		payloads++
		ev.Faults = *we.Faults
		if k != KindFaults {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "faults")
		}
	}
	if we.Quarantine != nil {
		payloads++
		ev.Quarantine = *we.Quarantine
		if k != KindQuarantine {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "quarantine")
		}
	}
	if we.Alert != nil {
		payloads++
		ev.Alert = *we.Alert
		if k != KindAlert {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "alert")
		}
	}
	if we.Checkpoint != nil {
		payloads++
		ev.Checkpoint = *we.Checkpoint
		if k != KindCheckpoint {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "checkpoint")
		}
	}
	if we.Trace != nil {
		payloads++
		ev.Trace = *we.Trace
		if k != KindTrace {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "trace")
		}
		if err := ev.Trace.Validate(); err != nil {
			return Event{}, fmt.Errorf("trace payload: %w", err)
		}
	}
	if we.TraceHist != nil {
		payloads++
		ev.TraceHist = *we.TraceHist
		if k != KindTraceHist {
			return Event{}, fmt.Errorf("kind %q carries a %q payload", we.Kind, "trace_hist")
		}
	}
	if payloads != 1 {
		return Event{}, fmt.Errorf("kind %q must carry exactly one payload, got %d", we.Kind, payloads)
	}
	return ev, nil
}

// Sink pumps a broker subscription to an io.Writer as JSONL on its own
// goroutine. Construct with NewSink; Close drains what is buffered,
// flushes, and reports the first write error.
type Sink struct {
	sub  *Subscription
	done chan struct{}

	mu  sync.Mutex
	err error
}

// NewSink subscribes to the broker (all kinds unless o.Kinds narrows
// them) and starts the pump goroutine. Returns nil if the broker is
// already closed. The pump stops when the broker closes or Close is
// called.
func NewSink(w io.Writer, b *Broker, o SubOptions) *Sink {
	sub := b.Subscribe(o)
	if sub == nil {
		return nil
	}
	s := &Sink{sub: sub, done: make(chan struct{})}
	go s.pump(w)
	return s
}

func (s *Sink) pump(w io.Writer) {
	defer close(s.done)
	bw := bufio.NewWriterSize(w, 64*1024)
	enc := json.NewEncoder(bw)
	buf := make([]Event, 0, 256)
	for {
		evs := s.sub.Wait(buf)
		if evs == nil {
			break
		}
		for i := range evs {
			we, err := toWire(&evs[i])
			if err == nil {
				err = enc.Encode(we)
			}
			if err != nil {
				s.setErr(err)
				// Keep draining so the publisher-side ring empties, but
				// stop writing.
				for s.sub.Wait(buf) != nil {
				}
				return
			}
		}
		buf = evs
	}
	s.setErr(bw.Flush())
}

func (s *Sink) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("obs: event sink: %w", err)
	}
	s.mu.Unlock()
}

// Close stops the pump after the buffered events drain and returns the
// first error the sink hit (nil on a clean run). Safe to call after
// the broker closed; idempotent.
func (s *Sink) Close() error {
	s.sub.Close()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
