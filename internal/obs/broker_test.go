package obs

import (
	"sync"
	"testing"
)

func winEvent(round int) Event {
	return Event{
		Kind:  KindWindow,
		Round: round,
		Window: WindowStats{
			Start: round - 1, End: round,
			MeanLoad: float64(round),
		},
	}
}

// TestBrokerRoundtrip publishes a burst and drains it back in order.
func TestBrokerRoundtrip(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 16})
	if sub == nil {
		t.Fatal("Subscribe returned nil on open broker")
	}
	for r := 1; r <= 10; r++ {
		ev := winEvent(r)
		b.Publish(&ev)
	}
	if got := b.Published(); got != 10 {
		t.Fatalf("Published = %d, want 10", got)
	}
	got := sub.Poll(nil)
	if len(got) != 10 {
		t.Fatalf("Poll returned %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Round != i+1 {
			t.Errorf("event %d: Round = %d, want %d", i, ev.Round, i+1)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Window.MeanLoad != float64(i+1) {
			t.Errorf("event %d: payload MeanLoad = %g, want %d", i, ev.Window.MeanLoad, i+1)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0", d)
	}
	if more := sub.Poll(got); len(more) != 0 {
		t.Errorf("second Poll returned %d events, want 0", len(more))
	}
}

// TestBrokerKindFilter checks that a masked subscription only sees its
// kinds while an unmasked one sees everything, with shared seq order.
func TestBrokerKindFilter(t *testing.T) {
	b := NewBroker()
	all := b.Subscribe(SubOptions{Capacity: 16})
	only := b.Subscribe(SubOptions{Capacity: 16, Kinds: Mask(KindLanes)})

	for r := 1; r <= 3; r++ {
		w := winEvent(r)
		b.Publish(&w)
		l := Event{Kind: KindLanes, Round: r, Lane: LaneStats{Shard: r, Inbound: int64(r) * 10}}
		b.Publish(&l)
	}
	if got := len(all.Poll(nil)); got != 6 {
		t.Errorf("unmasked subscription got %d events, want 6", got)
	}
	lanes := only.Poll(nil)
	if len(lanes) != 3 {
		t.Fatalf("masked subscription got %d events, want 3", len(lanes))
	}
	for i, ev := range lanes {
		if ev.Kind != KindLanes {
			t.Errorf("event %d: Kind = %v, want lanes", i, ev.Kind)
		}
		if want := uint64(2 * (i + 1)); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestBrokerDropOldest fills a tiny ring past capacity and checks the
// survivor set is the freshest suffix with an accurate drop count.
func TestBrokerDropOldest(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 4, Policy: DropOldest})
	for r := 1; r <= 10; r++ {
		ev := winEvent(r)
		b.Publish(&ev)
	}
	got := sub.Poll(nil)
	if len(got) != 4 {
		t.Fatalf("Poll returned %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := 7 + i; ev.Round != want {
			t.Errorf("event %d: Round = %d, want %d (freshest suffix)", i, ev.Round, want)
		}
	}
	if d := sub.Dropped(); d != 6 {
		t.Errorf("Dropped = %d, want 6", d)
	}
}

// TestBrokerDropNewest keeps the contiguous prefix instead.
func TestBrokerDropNewest(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 4, Policy: DropNewest})
	for r := 1; r <= 10; r++ {
		ev := winEvent(r)
		b.Publish(&ev)
	}
	got := sub.Poll(nil)
	if len(got) != 4 {
		t.Fatalf("Poll returned %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := 1 + i; ev.Round != want {
			t.Errorf("event %d: Round = %d, want %d (contiguous prefix)", i, ev.Round, want)
		}
	}
	if d := sub.Dropped(); d != 6 {
		t.Errorf("Dropped = %d, want 6", d)
	}
}

// TestBrokerPollBounded drains in caller-sized chunks.
func TestBrokerPollBounded(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 16})
	for r := 1; r <= 10; r++ {
		ev := winEvent(r)
		b.Publish(&ev)
	}
	buf := make([]Event, 0, 3)
	var rounds []int
	for {
		evs := sub.Poll(buf)
		if len(evs) == 0 {
			break
		}
		if len(evs) > 3 {
			t.Fatalf("Poll returned %d events with cap-3 buffer", len(evs))
		}
		for _, ev := range evs {
			rounds = append(rounds, ev.Round)
		}
	}
	if len(rounds) != 10 {
		t.Fatalf("chunked drain saw %d events, want 10", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Errorf("position %d: Round = %d, want %d", i, r, i+1)
		}
	}
}

// TestBrokerCloseWakesWait: a blocked Wait returns buffered events and
// then nil after Close, terminating the sink loop.
func TestBrokerCloseWakesWait(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 8})
	ev := winEvent(1)
	b.Publish(&ev)

	done := make(chan []int, 1)
	go func() {
		var rounds []int
		buf := make([]Event, 0, 4)
		for {
			evs := sub.Wait(buf)
			if evs == nil {
				break
			}
			for _, e := range evs {
				rounds = append(rounds, e.Round)
			}
		}
		done <- rounds
	}()

	ev2 := winEvent(2)
	b.Publish(&ev2)
	b.Close()
	rounds := <-done
	if len(rounds) < 1 || rounds[len(rounds)-1] != 2 {
		t.Fatalf("sink drained rounds %v, want suffix ending in 2", rounds)
	}
	// Publishing after close is a silent no-op.
	ev3 := winEvent(3)
	b.Publish(&ev3)
	if got := b.Published(); got != 2 {
		t.Errorf("Published after close = %d, want 2", got)
	}
	if s := b.Subscribe(SubOptions{}); s != nil {
		t.Error("Subscribe on closed broker returned non-nil")
	}
}

// TestSubscriptionClose detaches one subscription without disturbing
// the others.
func TestSubscriptionClose(t *testing.T) {
	b := NewBroker()
	s1 := b.Subscribe(SubOptions{Capacity: 8})
	s2 := b.Subscribe(SubOptions{Capacity: 8})
	ev := winEvent(1)
	b.Publish(&ev)
	s1.Close()
	s1.Close() // idempotent
	ev2 := winEvent(2)
	b.Publish(&ev2)
	if got := b.Subscribers(); got != 1 {
		t.Errorf("Subscribers = %d, want 1", got)
	}
	// s1 keeps its pre-close buffer but sees nothing new.
	if evs := s1.Poll(nil); len(evs) != 1 || evs[0].Round != 1 {
		t.Errorf("closed sub drained %d events, want just round 1", len(evs))
	}
	if evs := s2.Poll(nil); len(evs) != 2 {
		t.Errorf("surviving sub drained %d events, want 2", len(evs))
	}
}

// TestBrokerPublishZeroAlloc: the publish fan-out must not allocate —
// it sits on the engine's round loop.
func TestBrokerPublishZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	b := NewBroker()
	_ = b.Subscribe(SubOptions{Capacity: 64, Policy: DropOldest})
	_ = b.Subscribe(SubOptions{Capacity: 4, Policy: DropNewest, Kinds: Mask(KindWindow, KindLanes)})
	ev := winEvent(1)
	allocs := testing.AllocsPerRun(1000, func() {
		b.Publish(&ev)
		lane := &ev // reuse: exercise the copy semantics
		lane.Kind = KindLanes
		b.Publish(lane)
		lane.Kind = KindWindow
	})
	if allocs != 0 {
		t.Fatalf("Publish allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestBrokerPollZeroAlloc: draining into a caller-owned buffer must
// not allocate either.
func TestBrokerPollZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	b := NewBroker()
	sub := b.Subscribe(SubOptions{Capacity: 64})
	buf := make([]Event, 0, 64)
	ev := winEvent(1)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			b.Publish(&ev)
		}
		buf = sub.Poll(buf)
		if len(buf) != 8 {
			t.Fatalf("drained %d, want 8", len(buf))
		}
	})
	if allocs != 0 {
		t.Fatalf("Publish+Poll allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestBrokerConcurrent is a race-detector smoke: one publisher, three
// consumers (two polling, one waiting), churning subscriptions.
func TestBrokerConcurrent(t *testing.T) {
	b := NewBroker()
	sub1 := b.Subscribe(SubOptions{Capacity: 32})
	sub2 := b.Subscribe(SubOptions{Capacity: 8, Policy: DropNewest})
	waiter := b.Subscribe(SubOptions{Capacity: 32})

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for r := 1; r <= 500; r++ {
			ev := winEvent(r)
			b.Publish(&ev)
			if r == 250 {
				sub2.Close()
			}
		}
		b.Close()
	}()
	poll := func(s *Subscription) {
		defer wg.Done()
		buf := make([]Event, 0, 16)
		for i := 0; i < 1000; i++ {
			buf = s.Poll(buf)
		}
	}
	go poll(sub1)
	go poll(sub2)
	go func() {
		defer wg.Done()
		buf := make([]Event, 0, 16)
		last := uint64(0)
		for {
			evs := waiter.Wait(buf)
			if evs == nil {
				return
			}
			for _, ev := range evs {
				if ev.Seq <= last {
					t.Errorf("Wait saw non-monotonic Seq %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
			}
		}
	}()
	wg.Wait()
}
