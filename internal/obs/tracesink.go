package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"repro/internal/trace"
)

// TraceSink pumps the KindTrace stream to an io.Writer as bare
// trace.Record JSON Lines — the format cmd/lbtrace reads — on its own
// goroutine. It is the Sink pattern specialised to task-lifecycle
// records: the subscription is masked to KindTrace so no other event
// kind ever reaches the encoder, and the broker-side Seq is dropped on
// the way out, which is what makes the written stream byte-identical
// across worker counts.
type TraceSink struct {
	sub  *Subscription
	done chan struct{}

	mu  sync.Mutex
	err error
}

// NewTraceSink subscribes to the broker's KindTrace stream and starts
// the pump goroutine. Returns nil if the broker is already closed.
// capacity <= 0 selects the default ring size.
func NewTraceSink(w io.Writer, b *Broker, capacity int) *TraceSink {
	sub := b.Subscribe(SubOptions{Capacity: capacity, Kinds: Mask(KindTrace)})
	if sub == nil {
		return nil
	}
	s := &TraceSink{sub: sub, done: make(chan struct{})}
	go s.pump(w)
	return s
}

func (s *TraceSink) pump(w io.Writer) {
	defer close(s.done)
	bw := bufio.NewWriterSize(w, 64*1024)
	tw := trace.NewWriter(bw)
	buf := make([]Event, 0, 256)
	for {
		evs := s.sub.Wait(buf)
		if evs == nil {
			break
		}
		for i := range evs {
			if err := tw.Write(&evs[i].Trace); err != nil {
				s.setErr(err)
				for s.sub.Wait(buf) != nil {
				}
				return
			}
		}
		buf = evs
	}
	if err := tw.Flush(); err != nil {
		s.setErr(err)
		return
	}
	s.setErr(bw.Flush())
}

func (s *TraceSink) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("obs: trace sink: %w", err)
	}
	s.mu.Unlock()
}

// Dropped reports how many trace events the sink's bounded ring shed.
func (s *TraceSink) Dropped() uint64 { return s.sub.Dropped() }

// Close stops the pump after the buffered records drain and returns
// the first error the sink hit (nil on a clean run). Idempotent.
func (s *TraceSink) Close() error {
	s.sub.Close()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
