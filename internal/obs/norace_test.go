//go:build !race

package obs

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
