package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/task"
)

// TestExchangeLaneCounts pins the backpressure telemetry: lane counts
// accumulate at Route time as a source×destination matrix, survive
// multiple batches, and reset on demand — and enabling them does not
// disturb delivery.
func TestExchangeLaneCounts(t *testing.T) {
	const n = 8
	g := graph.Complete(n)
	ts := task.NewSet([]float64{2, 3, 4, 5})
	s := NewState(g, ts, []int{0, 0, 4, 4}, AboveAverage{Eps: 0.5}, 1)

	x := NewExchange([]int{0, 4, 8}) // two shards: [0,4) and [4,8)
	if x.LaneCounts() != nil {
		t.Fatal("lane counts non-nil before EnableLaneStats")
	}
	x.EnableLaneStats()

	// Shard 0 evacuates resource 0's two tasks: one stays in shard 0
	// (dest 1), one crosses to shard 1 (dest 6). Shard 1 evacuates
	// resource 4's two tasks, both to shard 1 (dest 5).
	m0 := s.EvacuateAppend(0, nil)
	m1 := s.EvacuateAppend(4, nil)
	x.Route(0, []Migration{{Task: m0[0], Dest: 1}, {Task: m0[1], Dest: 6}})
	x.Route(1, []Migration{{Task: m1[0], Dest: 5}, {Task: m1[1], Dest: 5}})
	x.DeliverShard(s, 0)
	x.DeliverShard(s, 1)
	st := x.Finish(s, false)
	if st.Migrations != 4 {
		t.Fatalf("delivered %d of 4", st.Migrations)
	}
	want := []int64{1, 1, 0, 2} // [src0→dst0, src0→dst1, src1→dst0, src1→dst1]
	got := x.LaneCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane counts %v, want %v", got, want)
		}
	}

	// A second batch accumulates on top.
	m2 := s.EvacuateAppend(1, nil)
	moves := make([]Migration, 0, len(m2))
	for _, tk := range m2 {
		moves = append(moves, Migration{Task: tk, Dest: 7})
	}
	x.Route(0, moves)
	x.Route(1, nil)
	x.DeliverShard(s, 0)
	x.DeliverShard(s, 1)
	x.Finish(s, false)
	if got := x.LaneCounts(); got[1] != 1+int64(len(m2)) {
		t.Fatalf("second batch did not accumulate: %v", got)
	}

	x.ResetLaneCounts()
	for i, c := range x.LaneCounts() {
		if c != 0 {
			t.Fatalf("lane %d not reset: %v", i, x.LaneCounts())
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
