package core

import (
	"fmt"
	"math"
)

// UserControlled is Algorithm 6.1 on the complete graph: in parallel,
// every task on an overloaded resource r migrates with probability
//
//	min(1, Alpha · ⌈φ_r/wmax⌉ · 1/b_r)
//
// to a resource chosen uniformly at random among the other n−1
// resources. Tasks know α, φ_r, wmax and b_r, as the paper assumes.
//
// Alpha = ε/(120(1+ε)) matches the Theorem 11 analysis;
// Alpha ≤ 1/(120n) matches Theorem 12. The Section 7 simulations use
// Alpha = 1 ("the factor we require in the analysis is quite
// conservative"), which is also our experiments' default.
type UserControlled struct {
	Alpha   float64
	Workers int // 0 or 1 = sequential
}

// TheoryAlphaAboveAverage returns the Theorem 11 analysis constant
// α = ε/(120(1+ε)).
func TheoryAlphaAboveAverage(eps float64) float64 { return eps / (120 * (1 + eps)) }

// TheoryAlphaTight returns the Theorem 12 analysis constant 1/(120n).
func TheoryAlphaTight(n int) float64 { return 1 / (120 * float64(n)) }

// Name identifies the protocol.
func (p UserControlled) Name() string {
	return fmt.Sprintf("user-controlled(alpha=%g)", p.Alpha)
}

// leaveProbability returns the per-task migration probability for
// resource r, capped at 1. The wmax in the coin is the maximum weight
// of the tasks currently in the system (identical to Set.WMax in the
// static setting; in the open system the live maximum, so a departed
// heavyweight outlier cannot permanently suppress migration).
func (p UserControlled) leaveProbability(s *State, r int) float64 {
	br := s.Count(r)
	if br == 0 {
		return 0
	}
	phi := s.ResourcePotential(r)
	prob := p.Alpha * math.Ceil(phi/s.LiveWMax()) / float64(br)
	if prob > 1 {
		prob = 1
	}
	return prob
}

// Step executes one synchronous round.
func (p UserControlled) Step(s *State) StepStats {
	if p.Alpha <= 0 {
		panic("core: UserControlled requires Alpha > 0")
	}
	// Settle the lazily recomputed live-wmax cache before the propose
	// phase: leaveProbability reads it from every worker goroutine, and
	// a dirty cache (possible after open-system departures) would make
	// those reads racy writes.
	s.LiveWMax()
	return s.DeliverMigrations(stepPropose(p, s, p.Workers))
}

// ProposeRange implements RangeProposer: it flips the leave coin for
// every task on each overloaded resource in [lo, hi) (bottom-to-top
// order) and samples destinations uniformly over the other resources.
// All randomness for resource r comes from r's own stream, keeping
// sharded execution deterministic. Callers must settle LiveWMax before
// proposing in parallel.
func (p UserControlled) ProposeRange(s *State, lo, hi int, sc *ProposeScratch) {
	n := s.N()
	if n < 2 {
		return // nowhere to migrate on a single resource
	}
	for r := lo; r < hi; r++ {
		if !s.Overloaded(r) {
			continue
		}
		prob := p.leaveProbability(s, r)
		if prob == 0 {
			continue
		}
		rr := s.rands[r]
		sc.idx = sc.idx[:0]
		for i := 0; i < s.stacks[r].Len(); i++ {
			if rr.Bool(prob) {
				sc.idx = append(sc.idx, i)
			}
		}
		if len(sc.idx) == 0 {
			continue
		}
		sc.tasks = s.removeForMigration(r, sc.idx, sc.tasks[:0])
		for _, tk := range sc.tasks {
			dest := rr.Intn(n - 1)
			if dest >= r {
				dest++ // uniform over the n−1 other resources
			}
			sc.Moves = append(sc.Moves, Migration{Task: tk, Dest: int32(dest)})
		}
	}
}

// UserControlledGraph generalises Algorithm 6.1 to arbitrary graphs:
// identical coin, but the destination is a uniformly random neighbour
// of the current resource. The paper restricts its user-controlled
// analysis to complete graphs (where neighbour = any other resource);
// this variant supports the exploratory ablation E10.
type UserControlledGraph struct {
	Alpha float64
}

// Name identifies the protocol.
func (p UserControlledGraph) Name() string {
	return fmt.Sprintf("user-controlled-graph(alpha=%g)", p.Alpha)
}

// Step executes one synchronous round of the graph variant.
func (p UserControlledGraph) Step(s *State) StepStats {
	if p.Alpha <= 0 {
		panic("core: UserControlledGraph requires Alpha > 0")
	}
	s.LiveWMax()
	return s.DeliverMigrations(stepPropose(p, s, 1))
}

// ProposeRange implements RangeProposer.
func (p UserControlledGraph) ProposeRange(s *State, lo, hi int, sc *ProposeScratch) {
	inner := UserControlled{Alpha: p.Alpha}
	g := s.Graph()
	for r := lo; r < hi; r++ {
		if !s.Overloaded(r) {
			continue
		}
		prob := inner.leaveProbability(s, r)
		if prob == 0 || g.Degree(r) == 0 {
			continue
		}
		rr := s.rands[r]
		sc.idx = sc.idx[:0]
		for i := 0; i < s.stacks[r].Len(); i++ {
			if rr.Bool(prob) {
				sc.idx = append(sc.idx, i)
			}
		}
		if len(sc.idx) == 0 {
			continue
		}
		sc.tasks = s.removeForMigration(r, sc.idx, sc.tasks[:0])
		for _, tk := range sc.tasks {
			dest := g.Neighbor(r, rr.Intn(g.Degree(r)))
			sc.Moves = append(sc.Moves, Migration{Task: tk, Dest: int32(dest)})
		}
	}
}

// Mixed alternates two protocols — the "mixed protocols, which are both
// resource-based and user-based" direction from the paper's
// conclusion. Rounds 0, Period, 2·Period, … run A; all others run B.
type Mixed struct {
	A, B   Protocol
	Period int // every Period-th round runs A; must be ≥ 1
}

// Name identifies the protocol.
func (p Mixed) Name() string {
	return fmt.Sprintf("mixed(%s|%s,period=%d)", p.A.Name(), p.B.Name(), p.Period)
}

// due returns the sub-protocol scheduled for the given round.
func (p Mixed) due(round int) Protocol {
	if p.Period < 1 {
		panic("core: Mixed requires Period >= 1")
	}
	if round%p.Period == 0 {
		return p.A
	}
	return p.B
}

// Step executes one synchronous round of whichever sub-protocol is due.
func (p Mixed) Step(s *State) StepStats {
	return p.due(s.round).Step(s)
}

// ProposeRange implements RangeProposer by delegating to the due
// sub-protocol. Only valid when RangeCapable reports true.
func (p Mixed) ProposeRange(s *State, lo, hi int, sc *ProposeScratch) {
	p.due(s.round).(RangeProposer).ProposeRange(s, lo, hi, sc)
}

// RangeCapable reports whether both sub-protocols support the sharded
// propose/deliver split.
func (p Mixed) RangeCapable() bool {
	return CanPropose(p.A) && CanPropose(p.B)
}
