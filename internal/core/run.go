package core

// RunOptions configures a protocol run.
type RunOptions struct {
	// MaxRounds caps the run; 0 means DefaultMaxRounds.
	MaxRounds int
	// RecordPotential stores Φ(t) before every round (plus the final
	// state) in the result — used by the drift-analysis experiments.
	RecordPotential bool
	// RecordMaxLoad stores the max load trajectory likewise.
	RecordMaxLoad bool
	// CheckInvariants validates conservation after every round
	// (slow; tests only).
	CheckInvariants bool
	// OnRound, if non-nil, is invoked after every completed round with
	// the live state (read-only use expected), the 1-based round number
	// and that round's stats — the hook behind load-trajectory tracing.
	OnRound func(s *State, round int, st StepStats)
}

// DefaultMaxRounds bounds runaway runs; the paper's regimes finish in
// at most a few thousand rounds at the experiment sizes.
const DefaultMaxRounds = 2_000_000

// RunResult reports a completed run.
type RunResult struct {
	// Rounds is the number of rounds executed until balance (or cap).
	Rounds int
	// Balanced reports whether the run reached the all-loads-≤-T state.
	Balanced bool
	// Migrations counts every task move.
	Migrations int64
	// MovedWeight is the total migrated weight.
	MovedWeight float64
	// PotentialTrace, if recorded, holds Φ(0), Φ(1), …, Φ(Rounds).
	PotentialTrace []float64
	// MaxLoadTrace, if recorded, holds the max load per round likewise.
	MaxLoadTrace []float64
}

// Run executes p on s until balanced or the round cap, returning the
// balancing statistics. The state is mutated in place.
func Run(s *State, p Protocol, opts RunOptions) RunResult {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	var res RunResult
	record := func() {
		if opts.RecordPotential {
			res.PotentialTrace = append(res.PotentialTrace, s.Potential())
		}
		if opts.RecordMaxLoad {
			res.MaxLoadTrace = append(res.MaxLoadTrace, s.MaxLoad())
		}
	}
	record()
	for res.Rounds = 0; res.Rounds < maxRounds; {
		if s.Balanced() {
			res.Balanced = true
			return res
		}
		st := p.Step(s)
		res.Rounds++
		res.Migrations += int64(st.Migrations)
		res.MovedWeight += st.MovedWeight
		record()
		if opts.OnRound != nil {
			opts.OnRound(s, res.Rounds, st)
		}
		if opts.CheckInvariants {
			if err := s.CheckInvariants(); err != nil {
				panic("core: invariant violated after round: " + err.Error())
			}
		}
	}
	res.Balanced = s.Balanced()
	return res
}
