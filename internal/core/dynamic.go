package core

import (
	"fmt"

	"repro/internal/task"
)

// Open-system mutators. The static protocols treat the task population
// and the threshold vector as fixed for a whole run; the dynamic engine
// (internal/dynamic) interleaves protocol rounds with arrivals,
// departures, resource churn and online threshold refreshes through the
// methods below. All of them keep the stack/location/task-set triple
// consistent, so CheckInvariants holds between engine phases.
//
// The sharded engine splits the arrival and departure mutations into a
// sequential half that touches shared aggregates (task-set accounting,
// the live-wmax cache) and a parallel half that touches only one
// resource's stack plus that task's location entry — Register/Place for
// arrivals, RemoveForDeparture/SettleDeparture for departures. The
// single-resource halves are safe to run concurrently for disjoint
// resources; the shared halves run at barriers in canonical (ascending
// resource) order so float accumulation is identical for every worker
// count.

// noteInsertWeight maintains the live-wmax cache across an arrival.
func (s *State) noteInsertWeight(w float64) {
	if s.liveWMaxDirty {
		if w > s.liveWMax {
			s.liveWMax = w // valid even while dirty: keeps an upper bound
		}
		return
	}
	switch {
	case w > s.liveWMax:
		s.liveWMax, s.liveWMaxCount = w, 1
	case w == s.liveWMax:
		s.liveWMaxCount++
	}
}

// noteRemoveWeight maintains the live-wmax cache across a departure:
// the cache only goes dirty once the last live task at the maximum
// weight leaves, so capped weight distributions (many tasks sharing
// wmax) almost never trigger the O(live) rescan.
func (s *State) noteRemoveWeight(w float64) {
	if s.liveWMaxDirty {
		return
	}
	if w == s.liveWMax {
		s.liveWMaxCount--
		if s.liveWMaxCount == 0 {
			s.liveWMaxDirty = true
		}
	}
}

// setLoc records task id's location, growing the map when the task set
// extended its ID space (recycled IDs reuse their slot).
func (s *State) setLoc(id int, r int32) {
	for id >= len(s.loc) {
		s.loc = append(s.loc, -1)
	}
	s.loc[id] = r
}

// InsertTask registers a brand-new task of weight w (reusing a retired
// ID when one is free) and places it on resource r — an open-system
// arrival.
func (s *State) InsertTask(w float64, r int) task.Task {
	tk := s.RegisterArrival(w)
	s.PlaceArrival(tk, r)
	return tk
}

// RegisterArrival runs the shared half of an arrival: the task joins
// the set (ID assignment, weight accounting, wmax cache) but is not yet
// on any resource. Complete it with PlaceArrival before the next
// consistency point. Sequential only.
func (s *State) RegisterArrival(w float64) task.Task {
	tk := s.ts.Add(w)
	s.setLoc(tk.ID, -1)
	s.noteInsertWeight(w)
	return tk
}

// PlaceArrival runs the per-resource half of an arrival: the
// registered task lands on resource r. Safe to call concurrently for
// disjoint r.
func (s *State) PlaceArrival(tk task.Task, r int) {
	if r < 0 || r >= len(s.stacks) {
		panic(fmt.Sprintf("core: PlaceArrival on invalid resource %d", r))
	}
	s.stacks[r].Push(tk)
	s.loc[tk.ID] = int32(r)
	s.updateOverloaded(r)
}

// RemoveTaskAt removes the task at stack position idx of resource r
// from the system entirely — a departure. The task leaves the stack and
// its ID is retired to the task set's free list.
func (s *State) RemoveTaskAt(r, idx int) task.Task {
	tk := s.stacks[r].PopAt(idx)
	s.loc[tk.ID] = -1
	s.updateOverloaded(r)
	s.SettleDeparture(tk)
	return tk
}

// RemoveTasksAt removes the tasks at the given strictly increasing
// stack positions of resource r in one compaction pass — the batch
// departure primitive (a round's service completions).
func (s *State) RemoveTasksAt(r int, indices []int) []task.Task {
	out := s.RemoveForDeparture(r, indices, nil)
	for _, tk := range out {
		s.SettleDeparture(tk)
	}
	return out
}

// RemoveForDeparture runs the per-resource half of a batch departure:
// the tasks at the given strictly increasing stack positions of
// resource r leave the stack (appended to dst) and their locations are
// cleared, but the shared task-set accounting is untouched. Safe to
// call concurrently for disjoint r; every returned task must be handed
// to SettleDeparture at the next barrier, in canonical order.
func (s *State) RemoveForDeparture(r int, indices []int, dst []task.Task) []task.Task {
	n := len(dst)
	dst = s.stacks[r].RemoveIndicesAppend(indices, dst)
	for _, tk := range dst[n:] {
		s.loc[tk.ID] = -1
	}
	s.updateOverloaded(r)
	return dst
}

// SettleDeparture runs the shared half of a departure: weight
// accounting, wmax cache and ID retirement. Sequential only.
func (s *State) SettleDeparture(tk task.Task) {
	s.ts.Remove(tk.ID)
	s.noteRemoveWeight(tk.Weight)
}

// LiveWMax returns the maximum weight among in-flight tasks (0 when
// the system is empty). Unlike Set.WMax — a high-watermark that keeps
// counting long-departed tasks — this is the right wmax for protocol
// probabilities and thresholds that track the current population. The
// value is cached together with the count of live tasks at the
// maximum; it is recomputed (O(n + live tasks)) only after the last
// such task departs, so callers must not query it while tasks are in
// limbo between Evacuate and Attach.
func (s *State) LiveWMax() float64 {
	if s.liveWMaxDirty {
		m, c := 0.0, 0
		for r := range s.stacks {
			for _, tk := range s.stacks[r].Tasks() {
				switch {
				case tk.Weight > m:
					m, c = tk.Weight, 1
				case tk.Weight == m:
					c++
				}
			}
		}
		s.liveWMax, s.liveWMaxCount = m, c
		s.liveWMaxDirty = false
	}
	return s.liveWMax
}

// Evacuate pops every task off resource r — a resource leaving the
// system. The tasks stay registered but are in limbo (Location −1)
// until re-homed with Attach; CheckInvariants fails while tasks are in
// limbo, so callers must re-home before the next consistency point.
func (s *State) Evacuate(r int) []task.Task {
	return s.EvacuateAppend(r, nil)
}

// EvacuateAppend is Evacuate into a caller-provided buffer.
func (s *State) EvacuateAppend(r int, dst []task.Task) []task.Task {
	n := len(dst)
	dst = append(dst, s.stacks[r].Tasks()...)
	s.stacks[r].Reset()
	for _, tk := range dst[n:] {
		s.loc[tk.ID] = -1
	}
	s.updateOverloaded(r)
	return dst
}

// Attach pushes an already-registered task onto resource r — the
// re-homing half of Evacuate, also used to bounce migrations off
// resources that left the system mid-round.
func (s *State) Attach(t task.Task, r int) {
	if r < 0 || r >= len(s.stacks) {
		panic(fmt.Sprintf("core: Attach on invalid resource %d", r))
	}
	s.stacks[r].Push(t)
	s.loc[t.ID] = int32(r)
	s.updateOverloaded(r)
}

// SetThresholds replaces the threshold vector in place — the dynamic
// engine's online refresh. The vector must have length N.
func (s *State) SetThresholds(v []float64) {
	if len(v) != len(s.stacks) {
		panic(fmt.Sprintf("core: SetThresholds got %d values, need %d", len(v), len(s.stacks)))
	}
	copy(s.thr, v)
	s.recountOverloaded()
}

// RefreshThresholds recomputes the thresholds from policy against the
// current (possibly grown or shrunk) task set.
func (s *State) RefreshThresholds(policy Thresholds) {
	v := policy.Values(s.ts, len(s.stacks))
	if len(v) != len(s.stacks) {
		panic("core: threshold policy returned wrong length")
	}
	copy(s.thr, v)
	s.recountOverloaded()
}

// InFlightWeight returns W(t), the total weight of live tasks.
func (s *State) InFlightWeight() float64 { return s.ts.W() }
