package core

import (
	"fmt"

	"repro/internal/task"
)

// Open-system mutators. The static protocols treat the task population
// and the threshold vector as fixed for a whole run; the dynamic engine
// (internal/dynamic) interleaves protocol rounds with arrivals,
// departures, resource churn and online threshold refreshes through the
// methods below. All of them keep the stack/location/task-set triple
// consistent, so CheckInvariants holds between engine phases.

// InsertTask registers a brand-new task of weight w (assigned the next
// unused ID) and places it on resource r — an open-system arrival.
func (s *State) InsertTask(w float64, r int) task.Task {
	if r < 0 || r >= len(s.stacks) {
		panic(fmt.Sprintf("core: InsertTask on invalid resource %d", r))
	}
	tk := s.ts.Add(w)
	s.stacks[r].Push(tk)
	s.loc = append(s.loc, int32(r))
	if w > s.liveWMax {
		s.liveWMax = w // valid even while dirty: keeps an upper bound
	}
	return tk
}

// RemoveTaskAt removes the task at stack position idx of resource r
// from the system entirely — a departure. The task leaves the stack and
// is tombstoned in the task set; its ID is never reused.
func (s *State) RemoveTaskAt(r, idx int) task.Task {
	tk := s.stacks[r].PopAt(idx)
	s.loc[tk.ID] = -1
	s.ts.Remove(tk.ID)
	if tk.Weight >= s.liveWMax {
		s.liveWMaxDirty = true
	}
	return tk
}

// RemoveTasksAt removes the tasks at the given strictly increasing
// stack positions of resource r in one compaction pass — the batch
// departure primitive (a round's service completions).
func (s *State) RemoveTasksAt(r int, indices []int) []task.Task {
	out := s.stacks[r].RemoveIndices(indices)
	for _, tk := range out {
		s.loc[tk.ID] = -1
		s.ts.Remove(tk.ID)
		if tk.Weight >= s.liveWMax {
			s.liveWMaxDirty = true
		}
	}
	return out
}

// LiveWMax returns the maximum weight among in-flight tasks (0 when
// the system is empty). Unlike Set.WMax — a high-watermark that keeps
// counting long-departed tasks — this is the right wmax for protocol
// probabilities and thresholds that track the current population. The
// value is cached; it is recomputed (O(n + live tasks)) only after the
// current maximum departs, so callers must not query it while tasks
// are in limbo between Evacuate and Attach.
func (s *State) LiveWMax() float64 {
	if s.liveWMaxDirty {
		m := 0.0
		for r := range s.stacks {
			for _, tk := range s.stacks[r].Tasks() {
				if tk.Weight > m {
					m = tk.Weight
				}
			}
		}
		s.liveWMax = m
		s.liveWMaxDirty = false
	}
	return s.liveWMax
}

// Evacuate pops every task off resource r — a resource leaving the
// system. The tasks stay registered but are in limbo (Location −1)
// until re-homed with Attach; CheckInvariants fails while tasks are in
// limbo, so callers must re-home before the next consistency point.
func (s *State) Evacuate(r int) []task.Task {
	out := append([]task.Task(nil), s.stacks[r].Tasks()...)
	s.stacks[r].Reset()
	for _, tk := range out {
		s.loc[tk.ID] = -1
	}
	return out
}

// Attach pushes an already-registered task onto resource r — the
// re-homing half of Evacuate, also used to bounce migrations off
// resources that left the system mid-round.
func (s *State) Attach(t task.Task, r int) {
	if r < 0 || r >= len(s.stacks) {
		panic(fmt.Sprintf("core: Attach on invalid resource %d", r))
	}
	s.stacks[r].Push(t)
	s.loc[t.ID] = int32(r)
}

// SetThresholds replaces the threshold vector in place — the dynamic
// engine's online refresh. The vector must have length N.
func (s *State) SetThresholds(v []float64) {
	if len(v) != len(s.stacks) {
		panic(fmt.Sprintf("core: SetThresholds got %d values, need %d", len(v), len(s.stacks)))
	}
	copy(s.thr, v)
}

// RefreshThresholds recomputes the thresholds from policy against the
// current (possibly grown or shrunk) task set.
func (s *State) RefreshThresholds(policy Thresholds) {
	v := policy.Values(s.ts, len(s.stacks))
	if len(v) != len(s.stacks) {
		panic("core: threshold policy returned wrong length")
	}
	copy(s.thr, v)
}

// InFlightWeight returns W(t), the total weight of live tasks.
func (s *State) InFlightWeight() float64 { return s.ts.W() }
