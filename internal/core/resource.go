package core

import (
	"sync"

	"repro/internal/walk"
)

// StepStats summarises one protocol round.
type StepStats struct {
	Migrations  int     // tasks that moved this round
	MovedWeight float64 // total weight of moved tasks
}

// Protocol advances the system by one synchronous round.
type Protocol interface {
	// Step executes one round, mutating s, and reports what moved.
	Step(s *State) StepStats
	// Name identifies the protocol in reports.
	Name() string
}

// ResourceControlled is Algorithm 5.1: every resource r with
// x_r(t) > T_r removes each task in Ia ∪ Ic (the tasks above or
// cutting the threshold) and reallocates it to a neighbour sampled
// from the random-walk kernel. Workers > 1 splits the propose phase
// across goroutines; results are identical to the sequential execution
// because each resource draws only from its own RNG stream.
type ResourceControlled struct {
	Kernel  walk.Kernel
	Workers int // 0 or 1 = sequential
}

// Name identifies the protocol.
func (p ResourceControlled) Name() string {
	return "resource-controlled(" + p.Kernel.Name() + ")"
}

// Step executes one synchronous round.
func (p ResourceControlled) Step(s *State) StepStats {
	var moves []migration
	if p.Workers > 1 {
		moves = p.proposeParallel(s)
	} else {
		moves = p.propose(s, 0, s.N(), nil)
	}
	stats := StepStats{Migrations: len(moves)}
	for _, mv := range moves {
		stats.MovedWeight += mv.t.Weight
	}
	s.deliver(moves)
	s.round++
	return stats
}

// propose scans resources [lo,hi), popping overflow from overloaded
// ones and sampling a destination per task. Appends to buf.
func (p ResourceControlled) propose(s *State, lo, hi int, buf []migration) []migration {
	for r := lo; r < hi; r++ {
		if !s.Overloaded(r) {
			continue
		}
		removed := s.stacks[r].PopOverflow(s.thr[r])
		rr := s.rands[r]
		for _, tk := range removed {
			dest := p.Kernel.Step(r, rr)
			buf = append(buf, migration{t: tk, dest: int32(dest)})
		}
	}
	return buf
}

// ResourceControlledSingle is an ablation variant of Algorithm 5.1
// that removes at most ONE task (the topmost) from each overloaded
// resource per round — the token-by-token style of Hoefer–Sauerwald's
// resource-controlled protocol for uniform tasks. Compared with the
// paper's batch removal it trades fewer migrations per round for more
// rounds; the ablation experiment quantifies the trade.
type ResourceControlledSingle struct {
	Kernel walk.Kernel
}

// Name identifies the protocol.
func (p ResourceControlledSingle) Name() string {
	return "resource-controlled-single(" + p.Kernel.Name() + ")"
}

// Step executes one synchronous round.
func (p ResourceControlledSingle) Step(s *State) StepStats {
	var moves []migration
	for r := 0; r < s.N(); r++ {
		if !s.Overloaded(r) {
			continue
		}
		st := &s.stacks[r]
		top := st.Len() - 1
		tk := st.Task(top)
		st.RemoveIndices([]int{top})
		dest := p.Kernel.Step(r, s.rands[r])
		moves = append(moves, migration{t: tk, dest: int32(dest)})
	}
	stats := StepStats{Migrations: len(moves)}
	for _, mv := range moves {
		stats.MovedWeight += mv.t.Weight
	}
	s.deliver(moves)
	s.round++
	return stats
}

// proposeParallel shards the propose phase. Shards own disjoint
// resource ranges and private buffers, so no locking is needed; the
// final concatenation order does not matter because deliver sorts.
func (p ResourceControlled) proposeParallel(s *State) []migration {
	workers := p.Workers
	n := s.N()
	if workers > n {
		workers = n
	}
	bufs := make([][]migration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			bufs[w] = p.propose(s, lo, hi, nil)
		}(w, lo, hi)
	}
	wg.Wait()
	var moves []migration
	for _, b := range bufs {
		moves = append(moves, b...)
	}
	return moves
}
