package core

import (
	"sync"

	"repro/internal/walk"
)

// StepStats summarises one protocol round.
type StepStats struct {
	Migrations  int     // tasks that moved this round
	MovedWeight float64 // total weight of moved tasks
}

// Protocol advances the system by one synchronous round.
type Protocol interface {
	// Step executes one round, mutating s, and reports what moved.
	Step(s *State) StepStats
	// Name identifies the protocol in reports.
	Name() string
}

// ResourceControlled is Algorithm 5.1: every resource r with
// x_r(t) > T_r removes each task in Ia ∪ Ic (the tasks above or
// cutting the threshold) and reallocates it to a neighbour sampled
// from the random-walk kernel. Workers > 1 splits the propose phase
// across goroutines; results are identical to the sequential execution
// because each resource draws only from its own RNG stream.
type ResourceControlled struct {
	Kernel  walk.Kernel
	Workers int // 0 or 1 = sequential
}

// Name identifies the protocol.
func (p ResourceControlled) Name() string {
	return "resource-controlled(" + p.Kernel.Name() + ")"
}

// Step executes one synchronous round.
func (p ResourceControlled) Step(s *State) StepStats {
	return s.DeliverMigrations(stepPropose(p, s, p.Workers))
}

// ProposeRange implements RangeProposer: it scans resources [lo, hi),
// popping overflow from overloaded ones and sampling a destination per
// task from the source resource's own stream.
func (p ResourceControlled) ProposeRange(s *State, lo, hi int, sc *ProposeScratch) {
	for r := lo; r < hi; r++ {
		if !s.Overloaded(r) {
			continue
		}
		sc.tasks = s.popOverflow(r, sc.tasks[:0])
		rr := s.rands[r]
		for _, tk := range sc.tasks {
			dest := p.Kernel.Step(r, rr)
			sc.Moves = append(sc.Moves, Migration{Task: tk, Dest: int32(dest)})
		}
	}
}

// ResourceControlledSingle is an ablation variant of Algorithm 5.1
// that removes at most ONE task (the topmost) from each overloaded
// resource per round — the token-by-token style of Hoefer–Sauerwald's
// resource-controlled protocol for uniform tasks. Compared with the
// paper's batch removal it trades fewer migrations per round for more
// rounds; the ablation experiment quantifies the trade.
type ResourceControlledSingle struct {
	Kernel walk.Kernel
}

// Name identifies the protocol.
func (p ResourceControlledSingle) Name() string {
	return "resource-controlled-single(" + p.Kernel.Name() + ")"
}

// Step executes one synchronous round.
func (p ResourceControlledSingle) Step(s *State) StepStats {
	return s.DeliverMigrations(stepPropose(p, s, 1))
}

// ProposeRange implements RangeProposer.
func (p ResourceControlledSingle) ProposeRange(s *State, lo, hi int, sc *ProposeScratch) {
	for r := lo; r < hi; r++ {
		if !s.Overloaded(r) {
			continue
		}
		sc.idx = append(sc.idx[:0], s.stacks[r].Len()-1)
		sc.tasks = s.removeForMigration(r, sc.idx, sc.tasks[:0])
		dest := p.Kernel.Step(r, s.rands[r])
		sc.Moves = append(sc.Moves, Migration{Task: sc.tasks[0], Dest: int32(dest)})
	}
}

// stepPropose collects a full propose phase for a standalone Step call
// — sequentially, or sharded across `workers` goroutines with private
// scratches. The concatenation order of the shard buffers does not
// matter: DeliverMigrations re-sorts into the canonical (dest, task
// ID) order before any delivery or accounting.
func stepPropose(p RangeProposer, s *State, workers int) []Migration {
	n := s.N()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var sc ProposeScratch
		p.ProposeRange(s, 0, n, &sc)
		return sc.Moves
	}
	scs := make([]ProposeScratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p.ProposeRange(s, lo, hi, &scs[w])
		}(w, lo, hi)
	}
	wg.Wait()
	var moves []Migration
	for _, sc := range scs {
		moves = append(moves, sc.Moves...)
	}
	return moves
}
