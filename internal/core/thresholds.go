// Package core implements the paper's primary contribution: the
// threshold-based load-balancing protocols for weighted tasks.
//
//   - Algorithm 5.1 (resource-controlled): overloaded resources push
//     their cutting/above tasks to random-walk neighbours; works on
//     arbitrary graphs. Theorem 3 bounds the balancing time by
//     O(τ(G)·log m) for above-average thresholds, Theorem 7 by
//     O(H(G)·ln W) for tight thresholds.
//   - Algorithm 6.1 (user-controlled): every task on an overloaded
//     resource of a complete graph tosses a coin with probability
//     α·⌈φ_r/wmax⌉·(1/b_r) and migrates to a uniformly random other
//     resource. Theorems 11/12 bound the expected balancing time by
//     O((wmax/wmin)·log m) and O(n·(wmax/wmin)·log m) respectively.
//
// The package also provides the extensions the paper's conclusion
// raises: a mixed resource+user protocol, a user-controlled variant on
// arbitrary graphs, and non-uniform thresholds.
package core

import (
	"fmt"

	"repro/internal/task"
)

// Thresholds computes the per-resource threshold vector for a task set
// on n resources. All the paper's policies are uniform; NonUniform and
// FixedVector support the extension and the diffusion-estimated case.
type Thresholds interface {
	// Values returns a length-n vector of thresholds.
	Values(ts *task.Set, n int) []float64
	// Name identifies the policy in reports.
	Name() string
}

func uniformVec(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// AboveAverage is the Section 5.1/6.1 threshold
// T = (1+ε)·W/n + wmax with ε > 0.
type AboveAverage struct{ Eps float64 }

// Values implements Thresholds.
func (a AboveAverage) Values(ts *task.Set, n int) []float64 {
	if a.Eps <= 0 {
		panic("core: AboveAverage requires eps > 0")
	}
	return uniformVec(n, (1+a.Eps)*ts.W()/float64(n)+ts.WMax())
}

// Name identifies the policy.
func (a AboveAverage) Name() string { return fmt.Sprintf("above-average(eps=%g)", a.Eps) }

// TightResource is the Section 5.2 threshold T = W/n + 2·wmax used by
// the resource-controlled protocol's tight analysis (Theorem 7).
type TightResource struct{}

// Values implements Thresholds.
func (TightResource) Values(ts *task.Set, n int) []float64 {
	return uniformVec(n, ts.W()/float64(n)+2*ts.WMax())
}

// Name identifies the policy.
func (TightResource) Name() string { return "tight-resource(W/n+2wmax)" }

// TightUser is the Section 6.2 threshold T = W/n + wmax used by the
// user-controlled protocol's tight analysis (Theorem 12).
type TightUser struct{}

// Values implements Thresholds.
func (TightUser) Values(ts *task.Set, n int) []float64 {
	return uniformVec(n, ts.W()/float64(n)+ts.WMax())
}

// Name identifies the policy.
func (TightUser) Name() string { return "tight-user(W/n+wmax)" }

// FixedVector supplies externally computed thresholds — e.g. from the
// diffusion average-estimation substrate (the paper's footnote 1: "the
// thresholds are provided externally"). The vector must be length n at
// use time.
type FixedVector struct {
	V     []float64
	Label string
}

// Values implements Thresholds.
func (f FixedVector) Values(ts *task.Set, n int) []float64 {
	if len(f.V) != n {
		panic(fmt.Sprintf("core: FixedVector has %d entries, need %d", len(f.V), n))
	}
	return append([]float64(nil), f.V...)
}

// Name identifies the policy.
func (f FixedVector) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fixed"
}

// NonUniform perturbs a base policy with per-resource additive slack —
// the "non-uniform thresholds" extension from the paper's conclusion.
// Slack must be non-negative so every threshold stays feasible.
type NonUniform struct {
	Base  Thresholds
	Slack []float64
}

// Values implements Thresholds.
func (p NonUniform) Values(ts *task.Set, n int) []float64 {
	if len(p.Slack) != n {
		panic(fmt.Sprintf("core: NonUniform slack has %d entries, need %d", len(p.Slack), n))
	}
	v := p.Base.Values(ts, n)
	for i := range v {
		if p.Slack[i] < 0 {
			panic("core: NonUniform slack must be non-negative")
		}
		v[i] += p.Slack[i]
	}
	return v
}

// Name identifies the policy.
func (p NonUniform) Name() string { return "nonuniform(" + p.Base.Name() + ")" }

// FromEstimates builds a FixedVector threshold (1+eps)·est_r + wmax
// from per-resource average-load estimates (e.g. diffusion output).
// Pass eps = 0 for the tight-user shape.
func FromEstimates(est []float64, eps, wmax float64) FixedVector {
	v := make([]float64, len(est))
	for i, e := range est {
		v[i] = (1+eps)*e + wmax
	}
	return FixedVector{V: v, Label: fmt.Sprintf("estimated(eps=%g)", eps)}
}

// Proportional models heterogeneous resources with speeds s_r (the
// Adolphs–Berenbrink extension the related-work section discusses):
// resource r's fair share of the total weight is W·s_r/S with
// S = Σ s_r, and its threshold is (1+ε)·W·s_r/S + wmax. All speeds
// must be positive; Eps must be positive so every resource keeps
// headroom above its share. Σ_r T_r > W, so a balanced state always
// exists.
type Proportional struct {
	Speeds []float64
	Eps    float64
}

// Values implements Thresholds.
func (p Proportional) Values(ts *task.Set, n int) []float64 {
	if len(p.Speeds) != n {
		panic(fmt.Sprintf("core: Proportional has %d speeds, need %d", len(p.Speeds), n))
	}
	if p.Eps <= 0 {
		panic("core: Proportional requires eps > 0")
	}
	total := 0.0
	for _, s := range p.Speeds {
		if s <= 0 {
			panic("core: Proportional speeds must be positive")
		}
		total += s
	}
	v := make([]float64, n)
	for i, s := range p.Speeds {
		v[i] = (1+p.Eps)*ts.W()*s/total + ts.WMax()
	}
	return v
}

// Name identifies the policy.
func (p Proportional) Name() string { return fmt.Sprintf("proportional(eps=%g)", p.Eps) }

// SpeedSum returns Σ s_r over the speed vector — the S in the
// proportional share W·s_r/S.
func SpeedSum(speeds []float64) float64 {
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	return total
}

// ShareInto writes the speed-proportional thresholds
//
//	dst[r] = (1+ε)·W·s_r/total + wmax
//
// into dst without allocating — the open-system form of Values, where
// the caller supplies the live aggregates (W and wmax track the
// in-flight population, and total is Σ s_r over the UP resources only,
// so thresholds target each live resource's fair share W·s_r/S_up of
// the current weight). dst must have length len(Speeds). This is the
// hook the dynamic tuners use to re-target heterogeneous fleets every
// refresh on the allocation-free round path.
func (p Proportional) ShareInto(dst []float64, w, wmax, total float64) {
	if len(dst) != len(p.Speeds) {
		panic(fmt.Sprintf("core: ShareInto dst has %d entries for %d speeds", len(dst), len(p.Speeds)))
	}
	if p.Eps <= 0 {
		panic("core: Proportional requires eps > 0")
	}
	if total <= 0 {
		panic("core: Proportional requires a positive total speed")
	}
	perSpeed := (1 + p.Eps) * w / total
	for i, s := range p.Speeds {
		dst[i] = perSpeed*s + wmax
	}
}
