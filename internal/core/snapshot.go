package core

// Checkpoint export/restore for State. The exported slices alias the
// state's internals (read-only use expected); the restore entry point
// takes exact recorded values for every incrementally-maintained
// float (threshold vector, live-wmax cache, in-flight ledger weight)
// so a resumed run continues bit-for-bit where the checkpointed one
// stopped. The overloaded set is the one piece of derived state that
// is recomputed instead of serialized — it is pure comparison, no
// float accumulation, so recounting cannot drift.

// SnapshotThresholds exposes the threshold vector for serialization.
func (s *State) SnapshotThresholds() []float64 { return s.thr }

// SnapshotLoc exposes the task→location vector for serialization
// (indexed by task ID; LocInFlight marks ledgered moves).
func (s *State) SnapshotLoc() []int32 { return s.loc }

// SnapshotLiveWMax exposes the live-wmax cache triple.
func (s *State) SnapshotLiveWMax() (wmax float64, count int, dirty bool) {
	return s.liveWMax, s.liveWMaxCount, s.liveWMaxDirty
}

// RestoreSnapshot installs a checkpointed state: the round counter,
// threshold vector, task locations, live-wmax cache and in-flight
// ledger, then recounts the overloaded set from the (already
// restored) stacks. Callers must restore every stack — via
// Stack(r).Restore — and the task set before calling this.
func (s *State) RestoreSnapshot(round int, thr []float64, loc []int32, liveWMax float64, liveWMaxCount int, liveWMaxDirty bool, inflightN int, inflightW float64) {
	s.round = round
	s.thr = append(s.thr[:0], thr...)
	s.loc = loc
	s.liveWMax = liveWMax
	s.liveWMaxCount = liveWMaxCount
	s.liveWMaxDirty = liveWMaxDirty
	s.inflightN = inflightN
	s.inflightW = inflightW
	s.recountOverloaded()
}
