package core

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

func unitTasks(m int) *task.Set {
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = 1
	}
	return task.NewSet(ws)
}

func singleSource(m int) []int { return make([]int, m) }

func TestThresholdPolicies(t *testing.T) {
	ts := task.NewSet([]float64{1, 1, 1, 50}) // W=53, wmax=50
	n := 4
	cases := []struct {
		p    Thresholds
		want float64
	}{
		{AboveAverage{Eps: 0.2}, 1.2*53.0/4 + 50},
		{TightResource{}, 53.0/4 + 100},
		{TightUser{}, 53.0/4 + 50},
	}
	for _, c := range cases {
		v := c.p.Values(ts, n)
		if len(v) != n {
			t.Fatalf("%s: length %d", c.p.Name(), len(v))
		}
		for _, x := range v {
			if math.Abs(x-c.want) > 1e-12 {
				t.Fatalf("%s: threshold %v want %v", c.p.Name(), x, c.want)
			}
		}
	}
}

func TestAboveAveragePanicsOnZeroEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AboveAverage{Eps: 0}.Values(unitTasks(4), 2)
}

func TestFixedVectorAndNonUniform(t *testing.T) {
	ts := unitTasks(4)
	fv := FixedVector{V: []float64{3, 4}, Label: "ext"}
	v := fv.Values(ts, 2)
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("fixed=%v", v)
	}
	nu := NonUniform{Base: fv, Slack: []float64{0, 2}}
	v2 := nu.Values(ts, 2)
	if v2[0] != 3 || v2[1] != 6 {
		t.Fatalf("nonuniform=%v", v2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative slack should panic")
		}
	}()
	NonUniform{Base: fv, Slack: []float64{-1, 0}}.Values(ts, 2)
}

func TestFromEstimates(t *testing.T) {
	fv := FromEstimates([]float64{10, 20}, 0.5, 3)
	v := fv.Values(unitTasks(2), 2)
	if v[0] != 18 || v[1] != 33 {
		t.Fatalf("estimates=%v", v)
	}
}

func TestNewStateAndInvariants(t *testing.T) {
	g := graph.Complete(5)
	ts := task.NewSet([]float64{2, 3, 4})
	s := NewState(g, ts, []int{0, 0, 4}, AboveAverage{Eps: 0.5}, 1)
	if s.N() != 5 || s.Load(0) != 5 || s.Load(4) != 4 || s.Count(0) != 2 {
		t.Fatal("initial placement wrong")
	}
	if s.Location(2) != 4 {
		t.Fatal("location map wrong")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewStatePanics(t *testing.T) {
	g := graph.Complete(3)
	ts := unitTasks(2)
	for name, f := range map[string]func(){
		"short placement": func() { NewState(g, ts, []int{0}, TightUser{}, 1) },
		"bad resource":    func() { NewState(g, ts, []int{0, 7}, TightUser{}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPotentialAndActive(t *testing.T) {
	g := graph.Complete(2)
	ts := task.NewSet([]float64{1, 1, 1, 1}) // W=4, n=2
	// Tight-user threshold: 4/2 + 1 = 3. All four on resource 0:
	// heights 0,1,2,3 → task3 above? h=3 ≥ 3 → above. task2: h=2,w=1 →
	// 3 ≤ 3 below. So overflow = 1 task, weight 1.
	s := NewState(g, ts, singleSource(4), TightUser{}, 1)
	if got := s.Potential(); got != 1 {
		t.Fatalf("potential=%v want 1", got)
	}
	if got := s.ActiveTasks(); got != 1 {
		t.Fatalf("active=%d want 1", got)
	}
	if s.Balanced() {
		t.Fatal("should be overloaded")
	}
	if got := s.OverloadedCount(); got != 1 {
		t.Fatalf("overloaded=%d", got)
	}
	if got := s.MaxLoad(); got != 4 {
		t.Fatalf("maxload=%v", got)
	}
}

func TestResourceControlledBalancesCompleteGraph(t *testing.T) {
	g := graph.Complete(20)
	ts := unitTasks(200)
	s := NewState(g, ts, singleSource(200), AboveAverage{Eps: 0.2}, 42)
	p := ResourceControlled{Kernel: walk.NewMaxDegree(g)}
	res := Run(s, p, RunOptions{MaxRounds: 10000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("did not balance in %d rounds", res.Rounds)
	}
	if res.Rounds == 0 || res.Migrations == 0 {
		t.Fatal("suspiciously trivial run")
	}
	for r := 0; r < s.N(); r++ {
		if s.Load(r) > s.Threshold(r) {
			t.Fatalf("resource %d overloaded after balance: %v > %v", r, s.Load(r), s.Threshold(r))
		}
	}
}

func TestResourceControlledBalancesWeightedOnGrid(t *testing.T) {
	g := graph.Grid2D(5, 5, true)
	r := rng.NewSeeded(7)
	ws := task.Pareto{Alpha: 1.5, Cap: 20}.Weights(100, r)
	ts := task.NewSet(ws)
	s := NewState(g, ts, singleSource(100), AboveAverage{Eps: 0.5}, 43)
	p := ResourceControlled{Kernel: walk.NewMaxDegree(g)}
	res := Run(s, p, RunOptions{MaxRounds: 50000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("weighted grid run did not balance in %d rounds", res.Rounds)
	}
}

func TestResourceControlledTightThresholdBalances(t *testing.T) {
	g := graph.Grid2D(4, 4, false)
	ts := unitTasks(64)
	s := NewState(g, ts, singleSource(64), TightResource{}, 44)
	p := ResourceControlled{Kernel: walk.NewMaxDegree(g)}
	res := Run(s, p, RunOptions{MaxRounds: 200000})
	if !res.Balanced {
		t.Fatalf("tight run did not balance in %d rounds", res.Rounds)
	}
}

func TestObservation4PotentialNonIncreasingResourceTight(t *testing.T) {
	g := graph.Grid2D(4, 4, true)
	r := rng.NewSeeded(9)
	ts := task.NewSet(task.UniformRange{Lo: 1, Hi: 8}.Weights(80, r))
	s := NewState(g, ts, singleSource(80), TightResource{}, 45)
	p := ResourceControlled{Kernel: walk.NewMaxDegree(g)}
	res := Run(s, p, RunOptions{MaxRounds: 100000, RecordPotential: true})
	if !res.Balanced {
		t.Fatalf("did not balance")
	}
	for i := 1; i < len(res.PotentialTrace); i++ {
		if res.PotentialTrace[i] > res.PotentialTrace[i-1]+1e-9 {
			t.Fatalf("potential increased at round %d: %v -> %v",
				i, res.PotentialTrace[i-1], res.PotentialTrace[i])
		}
	}
	if last := res.PotentialTrace[len(res.PotentialTrace)-1]; last != 0 {
		t.Fatalf("final potential %v != 0", last)
	}
}

func TestLemma1AcceptFraction(t *testing.T) {
	// Lemma 1: with T = (1+ε)W/n + wmax, at any time at least an
	// ε/(1+ε) fraction of resources can accept a task of weight wmax.
	const eps = 0.2
	g := graph.Complete(50)
	ts := unitTasks(500)
	s := NewState(g, ts, singleSource(500), AboveAverage{Eps: eps}, 46)
	p := UserControlled{Alpha: 1}
	bound := eps / (1 + eps)
	for i := 0; i < 200 && !s.Balanced(); i++ {
		if f := s.AcceptFraction(); f < bound-1e-12 {
			t.Fatalf("round %d: accept fraction %v below ε/(1+ε)=%v", i, f, bound)
		}
		p.Step(s)
	}
}

func TestUserControlledBalancesCompleteGraph(t *testing.T) {
	g := graph.Complete(100)
	ts := unitTasks(1000)
	s := NewState(g, ts, singleSource(1000), AboveAverage{Eps: 0.2}, 47)
	p := UserControlled{Alpha: 1}
	res := Run(s, p, RunOptions{MaxRounds: 10000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("user-controlled did not balance in %d rounds", res.Rounds)
	}
}

func TestUserControlledWeightedBalances(t *testing.T) {
	g := graph.Complete(50)
	r := rng.NewSeeded(11)
	ws := task.TwoPoint{Heavy: 50, K: 5}.Weights(500, r)
	ts := task.NewSet(ws)
	s := NewState(g, ts, singleSource(500), AboveAverage{Eps: 0.2}, 48)
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{MaxRounds: 50000})
	if !res.Balanced {
		t.Fatalf("weighted user run did not balance in %d rounds", res.Rounds)
	}
}

func TestUserControlledTightThreshold(t *testing.T) {
	g := graph.Complete(10)
	ts := unitTasks(50)
	s := NewState(g, ts, singleSource(50), TightUser{}, 49)
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{MaxRounds: 200000})
	if !res.Balanced {
		t.Fatalf("tight user run did not balance in %d rounds", res.Rounds)
	}
}

func TestUserControlledLeaveProbabilityCapped(t *testing.T) {
	g := graph.Complete(3)
	ts := task.NewSet([]float64{5, 5, 5, 5})
	s := NewState(g, ts, singleSource(4), TightUser{}, 50)
	p := UserControlled{Alpha: 100}
	if got := p.leaveProbability(s, 0); got != 1 {
		t.Fatalf("probability %v should cap at 1", got)
	}
	if got := p.leaveProbability(s, 1); got != 0 {
		t.Fatalf("empty resource leave probability %v", got)
	}
}

func TestTheoryAlphas(t *testing.T) {
	if got := TheoryAlphaAboveAverage(0.2); math.Abs(got-0.2/144) > 1e-15 {
		t.Fatalf("alpha=%v", got)
	}
	if got := TheoryAlphaTight(1000); math.Abs(got-1.0/120000) > 1e-18 {
		t.Fatalf("alpha=%v", got)
	}
}

func TestUserControlledGraphOnCycle(t *testing.T) {
	g := graph.Cycle(10)
	ts := unitTasks(100)
	s := NewState(g, ts, singleSource(100), AboveAverage{Eps: 0.5}, 51)
	res := Run(s, UserControlledGraph{Alpha: 1}, RunOptions{MaxRounds: 100000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("graph user protocol did not balance in %d rounds", res.Rounds)
	}
}

func TestMixedProtocol(t *testing.T) {
	g := graph.Complete(20)
	ts := unitTasks(200)
	s := NewState(g, ts, singleSource(200), AboveAverage{Eps: 0.2}, 52)
	p := Mixed{
		A:      ResourceControlled{Kernel: walk.NewMaxDegree(g)},
		B:      UserControlled{Alpha: 1},
		Period: 2,
	}
	res := Run(s, p, RunOptions{MaxRounds: 20000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("mixed protocol did not balance in %d rounds", res.Rounds)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	mk := func() RunResult {
		g := graph.Grid2D(4, 5, false)
		ts := unitTasks(100)
		s := NewState(g, ts, singleSource(100), AboveAverage{Eps: 0.3}, 777)
		return Run(s, ResourceControlled{Kernel: walk.NewMaxDegree(g)}, RunOptions{MaxRounds: 50000})
	}
	a, b := mk(), mk()
	if a.Rounds != b.Rounds || a.Migrations != b.Migrations || a.MovedWeight != b.MovedWeight {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestParallelStepMatchesSequential(t *testing.T) {
	run := func(workers int, protoSel string) (RunResult, []float64) {
		g := graph.Grid2D(6, 6, true)
		r := rng.NewSeeded(13)
		ts := task.NewSet(task.UniformRange{Lo: 1, Hi: 4}.Weights(150, r))
		s := NewState(g, ts, singleSource(150), AboveAverage{Eps: 0.25}, 888)
		var p Protocol
		switch protoSel {
		case "resource":
			p = ResourceControlled{Kernel: walk.NewMaxDegree(g), Workers: workers}
		case "user":
			p = UserControlled{Alpha: 1, Workers: workers}
		}
		res := Run(s, p, RunOptions{MaxRounds: 100000})
		loads := make([]float64, s.N())
		for i := range loads {
			loads[i] = s.Load(i)
		}
		return res, loads
	}
	for _, proto := range []string{"resource", "user"} {
		seqRes, seqLoads := run(1, proto)
		parRes, parLoads := run(4, proto)
		if seqRes.Rounds != parRes.Rounds || seqRes.Migrations != parRes.Migrations {
			t.Fatalf("%s: parallel run diverged: %+v vs %+v", proto, seqRes, parRes)
		}
		for i := range seqLoads {
			if seqLoads[i] != parLoads[i] {
				t.Fatalf("%s: load[%d] differs: %v vs %v", proto, i, seqLoads[i], parLoads[i])
			}
		}
	}
}

func TestRunAlreadyBalanced(t *testing.T) {
	g := graph.Complete(10)
	ts := unitTasks(10)
	placement := make([]int, 10)
	for i := range placement {
		placement[i] = i
	}
	s := NewState(g, ts, placement, AboveAverage{Eps: 1}, 53)
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{})
	if !res.Balanced || res.Rounds != 0 || res.Migrations != 0 {
		t.Fatalf("balanced start should terminate immediately: %+v", res)
	}
}

func TestRunHitsCapUnbalanced(t *testing.T) {
	// An impossible fixed threshold (below W/n) can never balance; the
	// runner must stop at MaxRounds and report Balanced=false.
	g := graph.Complete(4)
	ts := unitTasks(40)
	thr := FixedVector{V: []float64{1, 1, 1, 1}, Label: "impossible"}
	s := NewState(g, ts, singleSource(40), thr, 54)
	res := Run(s, UserControlled{Alpha: 0.5}, RunOptions{MaxRounds: 50})
	if res.Balanced || res.Rounds != 50 {
		t.Fatalf("expected capped unbalanced run, got %+v", res)
	}
}

func TestPotentialTraceRecording(t *testing.T) {
	g := graph.Complete(10)
	ts := unitTasks(100)
	s := NewState(g, ts, singleSource(100), AboveAverage{Eps: 0.2}, 55)
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{MaxRounds: 10000, RecordPotential: true, RecordMaxLoad: true})
	if len(res.PotentialTrace) != res.Rounds+1 || len(res.MaxLoadTrace) != res.Rounds+1 {
		t.Fatalf("trace lengths %d/%d for %d rounds",
			len(res.PotentialTrace), len(res.MaxLoadTrace), res.Rounds)
	}
	if res.PotentialTrace[0] == 0 {
		t.Fatal("initial potential should be positive")
	}
	if res.PotentialTrace[res.Rounds] != 0 {
		t.Fatal("final potential should be zero when balanced")
	}
}

func TestAcceptedTasksNeverMoveAgain(t *testing.T) {
	// Once a task is fully below the threshold on a resource under the
	// resource-controlled protocol it must stay there forever.
	g := graph.Grid2D(3, 3, false)
	ts := unitTasks(30)
	s := NewState(g, ts, singleSource(30), AboveAverage{Eps: 0.4}, 56)
	p := ResourceControlled{Kernel: walk.NewMaxDegree(g)}
	type acceptance struct {
		res   int
		round int
	}
	accepted := map[int]acceptance{}
	for round := 0; round < 100000 && !s.Balanced(); round++ {
		// Record acceptances.
		for r := 0; r < s.N(); r++ {
			below, _ := s.Stack(r).Partition(s.Threshold(r))
			for i := 0; i < below; i++ {
				id := s.Stack(r).Task(i).ID
				if a, ok := accepted[id]; ok && a.res != r {
					t.Fatalf("task %d accepted on %d (round %d) moved to %d (round %d)",
						id, a.res, a.round, r, round)
				} else if !ok {
					accepted[id] = acceptance{res: r, round: round}
				}
			}
		}
		p.Step(s)
	}
	if !s.Balanced() {
		t.Fatal("did not balance")
	}
}

// sortRef is the reference ordering sortMigrations must reproduce:
// sort.Slice on the (dest, task ID) key. The key is unique per move
// within a round (a task migrates at most once), so the reference
// order is total and any correct sort must match it exactly.
func sortRef(moves []Migration) []Migration {
	ref := append([]Migration(nil), moves...)
	sort.Slice(ref, func(i, j int) bool { return migrationLess(ref[i], ref[j]) })
	return ref
}

func checkAgainstRef(t *testing.T, label string, moves []Migration) {
	t.Helper()
	ref := sortRef(moves)
	got := append([]Migration(nil), moves...)
	buf := make([]Migration, len(got))
	sortMigrations(got, buf)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("%s: sortMigrations order diverges from sort.Slice reference\ngot  %v\nwant %v",
			label, got, ref)
	}
}

func TestMigrationSortDeterminism(t *testing.T) {
	moves := []Migration{
		{Task: task.Task{ID: 5}, Dest: 2},
		{Task: task.Task{ID: 1}, Dest: 2},
		{Task: task.Task{ID: 9}, Dest: 0},
		{Task: task.Task{ID: 3}, Dest: 1},
	}
	sortMigrations(moves, make([]Migration, len(moves)))
	wantIDs := []int{9, 3, 1, 5}
	for i, mv := range moves {
		if mv.Task.ID != wantIDs[i] {
			t.Fatalf("sorted order %v", moves)
		}
	}
}

// TestMigrationSortLargeMergePath drives the ≥32-element bottom-up
// merge against adversarial input shapes and checks every result
// against the sort.Slice reference order.
func TestMigrationSortLargeMergePath(t *testing.T) {
	r := rng.NewSeeded(14)
	mk := func(n int, dest func(i int) int32, id func(i int) int) []Migration {
		ms := make([]Migration, n)
		for i := range ms {
			ms[i] = Migration{Task: task.Task{ID: id(i)}, Dest: dest(i)}
		}
		return ms
	}
	// Boundary sizes around the insertion-sort/merge cutoff and around
	// merge widths (powers of two ± 1) where the tail-copy logic is
	// easiest to get wrong.
	for _, n := range []int{31, 32, 33, 63, 64, 65, 127, 128, 500, 1024, 1025} {
		sorted := mk(n, func(i int) int32 { return int32(i / 4) }, func(i int) int { return i })
		checkAgainstRef(t, fmt.Sprintf("n=%d already-sorted", n), sorted)

		rev := mk(n, func(i int) int32 { return int32((n - i) / 4) }, func(i int) int { return n - i })
		checkAgainstRef(t, fmt.Sprintf("n=%d reversed", n), rev)

		same := mk(n, func(i int) int32 { return 3 }, func(i int) int { return n - i })
		checkAgainstRef(t, fmt.Sprintf("n=%d single-dest", n), same)

		sawtooth := mk(n, func(i int) int32 { return int32(i % 5) }, func(i int) int { return i })
		checkAgainstRef(t, fmt.Sprintf("n=%d sawtooth", n), sawtooth)

		random := mk(n, func(i int) int32 { return int32(r.Intn(7)) }, func(i int) int { return i })
		r.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })
		checkAgainstRef(t, fmt.Sprintf("n=%d random", n), random)
	}
}

// TestDeliverMigrationsShardOrderInvariant pins the engine's
// cross-shard merge contract: DeliverMigrations must produce identical
// stacks, locations and stats — MovedWeight's float rounding included
// — no matter how the move set was partitioned and concatenated by
// shards.
func TestDeliverMigrationsShardOrderInvariant(t *testing.T) {
	build := func() (*State, []Migration) {
		r := rng.NewSeeded(99)
		g := graph.Complete(16)
		ws := make([]float64, 200)
		for i := range ws {
			ws[i] = 1 + 7*r.Float64()
		}
		ts := task.NewSet(ws)
		s := NewState(g, ts, make([]int, len(ws)), AboveAverage{Eps: 0.5}, 7)
		// Pull 48 tasks off resource 0 as the round's move set, with
		// clumped destinations so several moves share a dest.
		var moves []Migration
		idx := make([]int, 48)
		for i := range idx {
			idx[i] = 2 * i
		}
		for _, tk := range s.removeForMigration(0, idx, nil) {
			moves = append(moves, Migration{Task: tk, Dest: int32(tk.ID % 5)})
		}
		return s, moves
	}

	type outcome struct {
		stats StepStats
		loads []float64
		order [][]int
	}
	capture := func(s *State, st StepStats) outcome {
		o := outcome{stats: st, loads: s.Loads()}
		for rr := 0; rr < s.N(); rr++ {
			var ids []int
			for _, tk := range s.Stack(rr).Tasks() {
				ids = append(ids, tk.ID)
			}
			o.order = append(o.order, ids)
		}
		return o
	}

	s, moves := build()
	ref := capture(s, s.DeliverMigrations(append([]Migration(nil), moves...)))

	// Simulate different shard partitions: split the move set at every
	// possible boundary pair and concatenate the chunks in reversed
	// order — the worst-case shard arrival order.
	for _, cuts := range [][]int{{16}, {1}, {47}, {8, 31}, {3, 7, 40}} {
		s2, moves2 := build()
		var parts [][]Migration
		prev := 0
		for _, c := range append(cuts, len(moves2)) {
			parts = append(parts, moves2[prev:c])
			prev = c
		}
		var shuffled []Migration
		for i := len(parts) - 1; i >= 0; i-- {
			shuffled = append(shuffled, parts[i]...)
		}
		got := capture(s2, s2.DeliverMigrations(shuffled))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("cuts %v: shard concatenation order leaked into the delivery:\ngot  %+v\nwant %+v", cuts, got, ref)
		}
	}
}

func TestOnRoundHook(t *testing.T) {
	g := graph.Complete(10)
	ts := unitTasks(100)
	s := NewState(g, ts, singleSource(100), AboveAverage{Eps: 0.2}, 60)
	var rounds []int
	var gaps []float64
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{
		MaxRounds: 10000,
		OnRound: func(st *State, round int, stats StepStats) {
			rounds = append(rounds, round)
			loads := st.Loads()
			if len(loads) != 10 {
				t.Fatalf("loads length %d", len(loads))
			}
			gaps = append(gaps, st.MaxLoad())
		},
	})
	if !res.Balanced {
		t.Fatal("did not balance")
	}
	if len(rounds) != res.Rounds {
		t.Fatalf("hook fired %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("round numbering %v", rounds)
		}
	}
	// Final max load must respect the threshold.
	if gaps[len(gaps)-1] > s.Threshold(0) {
		t.Fatalf("final max load %v above threshold %v", gaps[len(gaps)-1], s.Threshold(0))
	}
}

func TestLoadsIsACopy(t *testing.T) {
	g := graph.Complete(3)
	ts := unitTasks(3)
	s := NewState(g, ts, []int{0, 1, 2}, AboveAverage{Eps: 1}, 61)
	loads := s.Loads()
	loads[0] = 99
	if s.Load(0) == 99 {
		t.Fatal("Loads aliased internal state")
	}
}

func TestProportionalThresholds(t *testing.T) {
	ts := unitTasks(100) // W = 100
	p := Proportional{Speeds: []float64{1, 3}, Eps: 0.2}
	v := p.Values(ts, 2)
	// Shares: 25 and 75; thresholds 1.2·share + wmax(=1).
	if math.Abs(v[0]-(1.2*25+1)) > 1e-12 || math.Abs(v[1]-(1.2*75+1)) > 1e-12 {
		t.Fatalf("thresholds=%v", v)
	}
	// Capacity must exceed W so balance is reachable.
	if v[0]+v[1] <= 100 {
		t.Fatalf("insufficient capacity: %v", v)
	}
}

// TestProportionalShareInto pins the allocation-free open-system form
// of the proportional thresholds: caller-supplied W/wmax/total (so the
// vector can target the UP capacity only) written into a reused
// buffer, agreeing with Values on the static all-up case.
func TestProportionalShareInto(t *testing.T) {
	ts := unitTasks(100)
	p := Proportional{Speeds: []float64{1, 3}, Eps: 0.2}
	dst := make([]float64, 2)
	p.ShareInto(dst, ts.W(), ts.WMax(), SpeedSum(p.Speeds))
	want := p.Values(ts, 2)
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("ShareInto=%v, Values=%v", dst, want)
		}
	}
	// Restricted capacity: resource 1 down leaves S_up = 1, so resource
	// 0's target is the whole (1+eps)·W plus wmax.
	p.ShareInto(dst, 100, 1, 1)
	if math.Abs(dst[0]-(1.2*100+1)) > 1e-12 {
		t.Fatalf("up-restricted share = %v", dst[0])
	}
	if allocs := testing.AllocsPerRun(100, func() {
		p.ShareInto(dst, 100, 1, 4)
	}); allocs != 0 {
		t.Fatalf("ShareInto allocates %v times per call", allocs)
	}
}

func TestProportionalPanics(t *testing.T) {
	ts := unitTasks(10)
	for name, f := range map[string]func(){
		"wrong length": func() { Proportional{Speeds: []float64{1}, Eps: 0.2}.Values(ts, 2) },
		"zero speed":   func() { Proportional{Speeds: []float64{1, 0}, Eps: 0.2}.Values(ts, 2) },
		"zero eps":     func() { Proportional{Speeds: []float64{1, 1}, Eps: 0}.Values(ts, 2) },
		"short dst":    func() { Proportional{Speeds: []float64{1, 1}, Eps: 0.2}.ShareInto(make([]float64, 1), 10, 1, 2) },
		"zero total":   func() { Proportional{Speeds: []float64{1, 1}, Eps: 0.2}.ShareInto(make([]float64, 2), 10, 1, 0) },
		"shareinto eps": func() {
			Proportional{Speeds: []float64{1, 1}}.ShareInto(make([]float64, 2), 10, 1, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestProportionalBalancesHeterogeneousCluster(t *testing.T) {
	// Fast resources (speed 4) should end up with ~4x the load of slow
	// ones (speed 1) once the user-controlled protocol settles.
	g := graph.Complete(20)
	ts := unitTasks(2000)
	speeds := make([]float64, 20)
	for i := range speeds {
		speeds[i] = 1
		if i < 5 {
			speeds[i] = 4
		}
	}
	s := NewState(g, ts, singleSource(2000), Proportional{Speeds: speeds, Eps: 0.2}, 62)
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{MaxRounds: 100000})
	if !res.Balanced {
		t.Fatalf("heterogeneous run did not balance in %d rounds", res.Rounds)
	}
	for r := 0; r < 20; r++ {
		if s.Load(r) > s.Threshold(r) {
			t.Fatalf("resource %d over its proportional threshold", r)
		}
	}
}

// Property: one protocol round conserves the task multiset and total
// weight for every protocol family.
func TestPropertyRoundConservation(t *testing.T) {
	r := rng.NewSeeded(63)
	g := graph.Grid2D(4, 4, true)
	protos := []func() Protocol{
		func() Protocol { return ResourceControlled{Kernel: walk.NewMaxDegree(g)} },
		func() Protocol { return UserControlledGraph{Alpha: 1} },
		func() Protocol {
			return Mixed{
				A:      ResourceControlled{Kernel: walk.NewMaxDegree(g)},
				B:      UserControlledGraph{Alpha: 1},
				Period: 2,
			}
		},
	}
	f := func(seed uint16) bool {
		m := 20 + int(seed%80)
		ws := task.UniformRange{Lo: 1, Hi: 5}.Weights(m, r)
		ts := task.NewSet(ws)
		placement := make([]int, m)
		for i := range placement {
			placement[i] = r.Intn(g.N())
		}
		for _, mk := range protos {
			s := NewState(g, ts, placement, AboveAverage{Eps: 0.3}, uint64(seed))
			p := mk()
			for round := 0; round < 5; round++ {
				p.Step(s)
				if err := s.CheckInvariants(); err != nil {
					t.Logf("invariant: %v", err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceControlledSingleBalances(t *testing.T) {
	g := graph.Grid2D(4, 4, true)
	ts := unitTasks(64)
	s := NewState(g, ts, singleSource(64), AboveAverage{Eps: 0.5}, 64)
	p := ResourceControlledSingle{Kernel: walk.NewMaxDegree(g)}
	res := Run(s, p, RunOptions{MaxRounds: 500000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("single-task variant did not balance in %d rounds", res.Rounds)
	}
	// It moves exactly one task per overloaded resource per round, so
	// migrations ≤ rounds·n trivially, and rounds should exceed the
	// batch variant's on this workload.
	s2 := NewState(g, ts, singleSource(64), AboveAverage{Eps: 0.5}, 64)
	res2 := Run(s2, ResourceControlled{Kernel: walk.NewMaxDegree(g)}, RunOptions{MaxRounds: 500000})
	if !res2.Balanced {
		t.Fatal("batch variant did not balance")
	}
	if res.Rounds < res2.Rounds {
		t.Fatalf("single-task (%d rounds) should not beat batch (%d rounds) from a single hot spot",
			res.Rounds, res2.Rounds)
	}
}

func TestUserControlledSingleResourceNoPanic(t *testing.T) {
	// n = 1: the only resource is permanently overloaded under an
	// impossible threshold; the protocol must not panic sampling a
	// destination from zero alternatives.
	g := graph.Build("singleton", 1, nil)
	ts := unitTasks(5)
	s := NewState(g, ts, singleSource(5), FixedVector{V: []float64{1}, Label: "tight1"}, 70)
	p := UserControlled{Alpha: 1}
	for i := 0; i < 10; i++ {
		p.Step(s)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Load(0) != 5 {
		t.Fatalf("load changed on singleton graph: %v", s.Load(0))
	}
}

func TestDynamicInsertRemove(t *testing.T) {
	g := graph.Complete(4)
	s := NewState(g, task.NewEmptySet(), nil, FixedVector{V: make([]float64, 4)}, 1)
	a := s.InsertTask(3, 0)
	b := s.InsertTask(5, 2)
	if a.ID != 0 || b.ID != 1 || s.Load(0) != 3 || s.Load(2) != 5 {
		t.Fatalf("inserts wrong: %+v %+v", a, b)
	}
	if s.Location(b.ID) != 2 || s.InFlightWeight() != 8 {
		t.Fatalf("location/weight wrong: loc=%d W=%v", s.Location(b.ID), s.InFlightWeight())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	gone := s.RemoveTaskAt(0, 0)
	if gone.ID != a.ID || s.Load(0) != 0 || s.InFlightWeight() != 5 {
		t.Fatalf("departure wrong: %+v load=%v", gone, s.Load(0))
	}
	if s.Location(a.ID) != -1 || !s.Tasks().Removed(a.ID) {
		t.Fatal("departed task still registered")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The departed ID is recycled for the next arrival and the
	// invariants still hold.
	c := s.InsertTask(2, 1)
	if c.ID != a.ID || s.Tasks().Removed(c.ID) {
		t.Fatalf("post-departure ID %d, want recycled %d", c.ID, a.ID)
	}
	if s.Location(c.ID) != 1 || s.InFlightWeight() != 7 {
		t.Fatalf("recycled task misplaced: loc=%d W=%v", s.Location(c.ID), s.InFlightWeight())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvacuateAndAttach(t *testing.T) {
	g := graph.Complete(3)
	ts := task.NewSet([]float64{2, 3, 4})
	s := NewState(g, ts, []int{1, 1, 1}, FixedVector{V: []float64{9, 9, 9}}, 1)
	out := s.Evacuate(1)
	if len(out) != 3 || s.Load(1) != 0 {
		t.Fatalf("evacuate returned %d tasks, load %v", len(out), s.Load(1))
	}
	// Mid-evacuation the invariants must fail (tasks in limbo)...
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("limbo state passed invariants")
	}
	// ...and re-homing restores them, conserving weight.
	for i, tk := range out {
		s.Attach(tk, i%3)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.InFlightWeight() != 9 {
		t.Fatalf("weight not conserved: %v", s.InFlightWeight())
	}
}

func TestThresholdRefresh(t *testing.T) {
	g := graph.Complete(2)
	ts := task.NewSet([]float64{2, 2})
	s := NewState(g, ts, []int{0, 1}, TightUser{}, 1)
	if s.Threshold(0) != 4 { // W/n + wmax = 2 + 2
		t.Fatalf("initial threshold %v", s.Threshold(0))
	}
	s.SetThresholds([]float64{7, 8})
	if s.Threshold(0) != 7 || s.Threshold(1) != 8 {
		t.Fatal("SetThresholds ignored")
	}
	// Growing the task set and refreshing recomputes from live totals.
	s.InsertTask(6, 0) // W=10, wmax=6
	s.RefreshThresholds(TightUser{})
	if s.Threshold(0) != 11 { // 10/2 + 6
		t.Fatalf("refreshed threshold %v", s.Threshold(0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad SetThresholds length did not panic")
		}
	}()
	s.SetThresholds([]float64{1})
}

func TestProtocolsRunOnDynamicState(t *testing.T) {
	// A state grown entirely through InsertTask balances under the
	// standard protocols exactly like a statically placed one.
	g := graph.Complete(10)
	s := NewState(g, task.NewEmptySet(), nil, FixedVector{V: make([]float64, 10)}, 3)
	for i := 0; i < 60; i++ {
		s.InsertTask(1+float64(i%3), 0) // all on one resource
	}
	s.RefreshThresholds(AboveAverage{Eps: 0.3})
	res := Run(s, UserControlled{Alpha: 1}, RunOptions{MaxRounds: 100000, CheckInvariants: true})
	if !res.Balanced {
		t.Fatalf("dynamic-grown state did not balance: %+v", res)
	}
}

func TestRemoveTasksAtBatch(t *testing.T) {
	g := graph.Complete(2)
	ts := task.NewSet([]float64{2, 3, 4, 5})
	s := NewState(g, ts, []int{0, 0, 0, 0}, FixedVector{V: []float64{99, 99}}, 1)
	out := s.RemoveTasksAt(0, []int{0, 2})
	if len(out) != 2 || out[0].Weight != 2 || out[1].Weight != 4 {
		t.Fatalf("batch removal returned %+v", out)
	}
	if s.Load(0) != 8 || s.InFlightWeight() != 8 || !s.Tasks().Removed(out[0].ID) {
		t.Fatalf("post-removal state: load=%v W=%v", s.Load(0), s.InFlightWeight())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveWMaxTracksDepartures(t *testing.T) {
	g := graph.Complete(2)
	s := NewState(g, task.NewEmptySet(), nil, FixedVector{V: []float64{9, 9}}, 1)
	s.InsertTask(3, 0)
	heavy := s.InsertTask(7, 1)
	if s.LiveWMax() != 7 {
		t.Fatalf("live wmax %v want 7", s.LiveWMax())
	}
	s.RemoveTaskAt(s.Location(heavy.ID), 0)
	// The watermark keeps the departed heavyweight; the live view
	// (which online thresholds use) does not.
	if s.Tasks().WMax() != 7 || s.LiveWMax() != 3 {
		t.Fatalf("wmax watermark=%v live=%v", s.Tasks().WMax(), s.LiveWMax())
	}
	s.RemoveTaskAt(0, 0)
	if s.LiveWMax() != 0 {
		t.Fatalf("empty-system live wmax %v", s.LiveWMax())
	}
}

func TestLeaveProbabilityUsesLiveWMax(t *testing.T) {
	// A departed heavyweight outlier must not keep suppressing the
	// user-controlled migration coin: the denominator is the live max
	// weight, not the all-time watermark.
	g := graph.Complete(4)
	s := NewState(g, task.NewEmptySet(), nil, FixedVector{V: []float64{1, 1, 1, 1}}, 1)
	heavy := s.InsertTask(1000, 0)
	for i := 0; i < 10; i++ {
		s.InsertTask(2, 1) // resource 1: load 20 over threshold 1
	}
	p := UserControlled{Alpha: 1}
	// With the heavyweight alive, ceil(phi/1000) = 1 -> prob 1/10.
	if got := p.leaveProbability(s, 1); got != 0.1 {
		t.Fatalf("live-heavy probability %v want 0.1", got)
	}
	s.RemoveTaskAt(0, 0)
	_ = heavy
	// Heavy departed: live wmax is 2, ceil(20/2) = 10 -> prob 1.
	if got := p.leaveProbability(s, 1); got != 1 {
		t.Fatalf("post-departure probability %v want 1 (watermark wmax=%v, live=%v)",
			got, s.Tasks().WMax(), s.LiveWMax())
	}
}
