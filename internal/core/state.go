package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stack"
	"repro/internal/task"
)

// State is the full simulation state: one stack per resource, the
// threshold vector, the task→resource map, and one RNG stream per
// resource. Per-resource streams make every protocol step a
// deterministic function of (seed, initial placement) regardless of
// execution order, which is what allows the parallel step executor to
// reproduce the sequential one bit-for-bit.
type State struct {
	g      *graph.Graph
	ts     *task.Set
	stacks []stack.Stack
	thr    []float64
	loc    []int32 // task ID -> resource
	rands  []*rng.Rand
	round  int

	// Cached max weight over live tasks; dirty after the current max
	// departs (open systems only — static runs never remove tasks).
	liveWMax      float64
	liveWMaxDirty bool
}

// NewState places the task set on g's resources according to placement
// (task ID → resource) and computes thresholds with policy. seed
// determines all randomness of the subsequent run.
func NewState(g *graph.Graph, ts *task.Set, placement []int, policy Thresholds, seed uint64) *State {
	n := g.N()
	if n == 0 {
		panic("core: graph has no resources")
	}
	if len(placement) != ts.M() {
		panic(fmt.Sprintf("core: placement has %d entries for %d tasks", len(placement), ts.M()))
	}
	s := &State{
		g:      g,
		ts:     ts,
		stacks: make([]stack.Stack, n),
		thr:    policy.Values(ts, n),
		loc:    make([]int32, ts.M()),
		rands:  make([]*rng.Rand, n),
	}
	if len(s.thr) != n {
		panic("core: threshold policy returned wrong length")
	}
	for id, res := range placement {
		if res < 0 || res >= n {
			panic(fmt.Sprintf("core: task %d placed on invalid resource %d", id, res))
		}
		s.stacks[res].Push(ts.Task(id))
		s.loc[id] = int32(res)
	}
	for r := 0; r < n; r++ {
		s.rands[r] = rng.Stream(seed, uint64(r))
	}
	s.liveWMax = ts.WMax()
	return s
}

// Graph returns the resource graph.
func (s *State) Graph() *graph.Graph { return s.g }

// Tasks returns the task set.
func (s *State) Tasks() *task.Set { return s.ts }

// N returns the number of resources.
func (s *State) N() int { return len(s.stacks) }

// Round returns the number of completed protocol rounds.
func (s *State) Round() int { return s.round }

// Load returns x_r, the total weight on resource r.
func (s *State) Load(r int) float64 { return s.stacks[r].Load() }

// Count returns b_r, the number of tasks on resource r.
func (s *State) Count(r int) int { return s.stacks[r].Len() }

// Threshold returns T_r.
func (s *State) Threshold(r int) float64 { return s.thr[r] }

// Stack exposes resource r's stack (read-only use expected).
func (s *State) Stack(r int) *stack.Stack { return &s.stacks[r] }

// Location returns the resource currently holding task id.
func (s *State) Location(id int) int { return int(s.loc[id]) }

// Overloaded reports whether resource r exceeds its threshold.
func (s *State) Overloaded(r int) bool { return s.stacks[r].Load() > s.thr[r] }

// OverloadedCount returns the number of overloaded resources.
func (s *State) OverloadedCount() int {
	c := 0
	for r := range s.stacks {
		if s.Overloaded(r) {
			c++
		}
	}
	return c
}

// Balanced reports whether every load is at or below its threshold —
// the paper's termination condition.
func (s *State) Balanced() bool { return s.OverloadedCount() == 0 }

// Loads returns a fresh copy of the load vector — the input for the
// metrics package's imbalance measures.
func (s *State) Loads() []float64 {
	out := make([]float64, len(s.stacks))
	for r := range s.stacks {
		out[r] = s.stacks[r].Load()
	}
	return out
}

// MaxLoad returns the maximum resource load.
func (s *State) MaxLoad() float64 {
	m := 0.0
	for r := range s.stacks {
		if l := s.stacks[r].Load(); l > m {
			m = l
		}
	}
	return m
}

// Potential returns Φ(t) = Σ_r φ_r(t): the total weight of tasks that
// are cutting or above their resource's threshold (Eq. (1) for the
// tight analysis; Section 6's Φ for the user-controlled one).
func (s *State) Potential() float64 {
	p := 0.0
	for r := range s.stacks {
		p += s.stacks[r].OverflowWeight(s.thr[r])
	}
	return p
}

// ResourcePotential returns φ_r(t).
func (s *State) ResourcePotential(r int) float64 {
	return s.stacks[r].OverflowWeight(s.thr[r])
}

// ActiveTasks returns the number of tasks not yet accepted (cutting or
// above on their current resource).
func (s *State) ActiveTasks() int {
	c := 0
	for r := range s.stacks {
		c += s.stacks[r].OverflowCount(s.thr[r])
	}
	return c
}

// AcceptFraction returns the fraction of resources that could accept an
// extra task of weight wmax — the quantity Lemma 1 lower-bounds by
// ε/(1+ε) for above-average thresholds.
func (s *State) AcceptFraction() float64 {
	wmax := s.ts.WMax()
	c := 0
	for r := range s.stacks {
		if s.stacks[r].Load() <= s.thr[r]-wmax {
			c++
		}
	}
	return float64(c) / float64(len(s.stacks))
}

// CheckInvariants validates global conservation: every task is on
// exactly one resource, the location map agrees with the stacks, loads
// equal summed weights, and total weight equals W.
func (s *State) CheckInvariants() error {
	seen := make([]bool, s.ts.M())
	total := 0.0
	for r := range s.stacks {
		if err := s.stacks[r].CheckInvariants(); err != nil {
			return fmt.Errorf("resource %d: %w", r, err)
		}
		for _, tk := range s.stacks[r].Tasks() {
			if tk.ID < 0 || tk.ID >= s.ts.M() {
				return fmt.Errorf("resource %d holds unknown task %d", r, tk.ID)
			}
			if s.ts.Removed(tk.ID) {
				return fmt.Errorf("resource %d holds departed task %d", r, tk.ID)
			}
			if seen[tk.ID] {
				return fmt.Errorf("task %d appears twice", tk.ID)
			}
			seen[tk.ID] = true
			if int(s.loc[tk.ID]) != r {
				return fmt.Errorf("task %d: location map says %d, stack says %d", tk.ID, s.loc[tk.ID], r)
			}
		}
		total += s.stacks[r].Load()
	}
	for id, ok := range seen {
		if s.ts.Removed(id) {
			if s.loc[id] != -1 {
				return fmt.Errorf("departed task %d still mapped to resource %d", id, s.loc[id])
			}
			continue
		}
		if !ok {
			return fmt.Errorf("task %d lost", id)
		}
	}
	if math.Abs(total-s.ts.W()) > 1e-6*(1+s.ts.W()) {
		return fmt.Errorf("total weight %v != W %v", total, s.ts.W())
	}
	return nil
}

// migration is one task move decided in the propose phase of a round.
type migration struct {
	t    task.Task
	dest int32
}

// deliver pushes migrations onto their destination stacks ordered by
// (destination, task ID): "if several balls arrive at the same
// resource in one time step the new balls are added in an arbitrary
// order" — task-ID order is our fixed arbitrary choice, making rounds
// deterministic.
func (s *State) deliver(moves []migration) {
	sortMigrations(moves)
	for _, mv := range moves {
		s.stacks[mv.dest].Push(mv.t)
		s.loc[mv.t.ID] = mv.dest
	}
}

// sortMigrations orders by (dest, task ID) — insertion sort for the
// typically short per-round move lists, falling back to heap-style
// sorting cost O(k²) only on adversarial sizes is avoided via a simple
// bottom-up merge for large k.
func sortMigrations(moves []migration) {
	if len(moves) < 32 {
		for i := 1; i < len(moves); i++ {
			mv := moves[i]
			j := i - 1
			for j >= 0 && migrationLess(mv, moves[j]) {
				moves[j+1] = moves[j]
				j--
			}
			moves[j+1] = mv
		}
		return
	}
	buf := make([]migration, len(moves))
	for width := 1; width < len(moves); width *= 2 {
		for lo := 0; lo < len(moves); lo += 2 * width {
			mid := min(lo+width, len(moves))
			hi := min(lo+2*width, len(moves))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if migrationLess(moves[j], moves[i]) {
					buf[k] = moves[j]
					j++
				} else {
					buf[k] = moves[i]
					i++
				}
				k++
			}
			copy(buf[k:hi], moves[i:mid])
			copy(buf[k+mid-i:hi], moves[j:hi])
		}
		copy(moves, buf)
	}
}

func migrationLess(a, b migration) bool {
	if a.dest != b.dest {
		return a.dest < b.dest
	}
	return a.t.ID < b.t.ID
}
