package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stack"
	"repro/internal/task"
)

// State is the full simulation state: one stack per resource, the
// threshold vector, the task→resource map, and one RNG stream per
// resource. Per-resource streams make every protocol step a
// deterministic function of (seed, initial placement) regardless of
// execution order, which is what allows the parallel step executor to
// reproduce the sequential one bit-for-bit.
type State struct {
	g      *graph.Graph
	ts     *task.Set
	stacks []stack.Stack
	thr    []float64
	loc    []int32 // task ID -> resource
	rands  []*rng.Rand
	round  int

	// Incrementally maintained overload tracker: over[r] mirrors
	// Load(r) > thr[r] and overCount their population count, updated at
	// every load or threshold mutation so Balanced()/OverloadedCount()
	// are O(1) instead of O(n) per round. The counter is atomic because
	// sharded phases flip disjoint over[r] entries concurrently; integer
	// adds commute, so the barrier-time value is independent of
	// interleaving.
	over      []bool
	overCount atomic.Int64

	// Cached max weight over live tasks plus the number of live tasks
	// at exactly that weight; dirty only once the last task at the
	// maximum departs (open systems only — static runs never remove
	// tasks), which makes the O(live) rescan rare even for capped
	// weight distributions where many tasks share wmax.
	liveWMax      float64
	liveWMaxCount int
	liveWMaxDirty bool

	// Reusable scratch for DeliverMigrations' canonical sort.
	sortScratch []Migration

	// In-flight ledger totals, maintained by the fault layer via
	// MarkInFlight/ClearInFlight: live tasks currently held off every
	// stack (loc == LocInFlight) because their migration message was
	// lost or delayed. Weight conservation holds over placed +
	// in-flight mass, which CheckInvariants verifies.
	inflightN int
	inflightW float64
}

// LocInFlight is the Location sentinel for a live task held by the
// message-fault layer: off every stack, waiting in the in-flight
// ledger or the delay wheel. (-1 marks departed or mid-delivery
// limbo, as before.)
const LocInFlight = -2

// NewState places the task set on g's resources according to placement
// (task ID → resource) and computes thresholds with policy. seed
// determines all randomness of the subsequent run.
func NewState(g *graph.Graph, ts *task.Set, placement []int, policy Thresholds, seed uint64) *State {
	n := g.N()
	if n == 0 {
		panic("core: graph has no resources")
	}
	if len(placement) != ts.M() {
		panic(fmt.Sprintf("core: placement has %d entries for %d tasks", len(placement), ts.M()))
	}
	s := &State{
		g:      g,
		ts:     ts,
		stacks: make([]stack.Stack, n),
		thr:    policy.Values(ts, n),
		loc:    make([]int32, ts.M()),
		rands:  make([]*rng.Rand, n),
		over:   make([]bool, n),
	}
	if len(s.thr) != n {
		panic("core: threshold policy returned wrong length")
	}
	for id, res := range placement {
		if res < 0 || res >= n {
			panic(fmt.Sprintf("core: task %d placed on invalid resource %d", id, res))
		}
		s.stacks[res].Push(ts.Task(id))
		s.loc[id] = int32(res)
	}
	for r := 0; r < n; r++ {
		s.rands[r] = rng.Stream(seed, uint64(r))
	}
	s.recountOverloaded()
	s.liveWMax = ts.WMax()
	for _, tk := range ts.Tasks() {
		if tk.Weight == s.liveWMax {
			s.liveWMaxCount++
		}
	}
	return s
}

// recountOverloaded rebuilds the incremental overload tracker from
// scratch — O(n), used at construction and after wholesale threshold
// replacement.
func (s *State) recountOverloaded() {
	c := int64(0)
	for r := range s.stacks {
		o := s.stacks[r].Load() > s.thr[r]
		s.over[r] = o
		if o {
			c++
		}
	}
	s.overCount.Store(c)
}

// updateOverloaded refreshes resource r's entry in the overload
// tracker after a load mutation. Safe to call concurrently for
// distinct r.
func (s *State) updateOverloaded(r int) {
	now := s.stacks[r].Load() > s.thr[r]
	if now != s.over[r] {
		s.over[r] = now
		if now {
			s.overCount.Add(1)
		} else {
			s.overCount.Add(-1)
		}
	}
}

// Graph returns the resource graph.
func (s *State) Graph() *graph.Graph { return s.g }

// Tasks returns the task set.
func (s *State) Tasks() *task.Set { return s.ts }

// N returns the number of resources.
func (s *State) N() int { return len(s.stacks) }

// Round returns the number of completed protocol rounds.
func (s *State) Round() int { return s.round }

// Load returns x_r, the total weight on resource r.
func (s *State) Load(r int) float64 { return s.stacks[r].Load() }

// Count returns b_r, the number of tasks on resource r.
func (s *State) Count(r int) int { return s.stacks[r].Len() }

// Threshold returns T_r.
func (s *State) Threshold(r int) float64 { return s.thr[r] }

// Stack exposes resource r's stack (read-only use expected).
func (s *State) Stack(r int) *stack.Stack { return &s.stacks[r] }

// Location returns the resource currently holding task id.
func (s *State) Location(id int) int { return int(s.loc[id]) }

// Overloaded reports whether resource r exceeds its threshold.
func (s *State) Overloaded(r int) bool { return s.stacks[r].Load() > s.thr[r] }

// OverloadedCount returns the number of overloaded resources — O(1),
// maintained incrementally by every load and threshold mutation.
func (s *State) OverloadedCount() int { return int(s.overCount.Load()) }

// Balanced reports whether every load is at or below its threshold —
// the paper's termination condition. O(1).
func (s *State) Balanced() bool { return s.overCount.Load() == 0 }

// Rand returns resource r's private RNG stream. The open-system engine
// drives service and protocol draws for r from this one stream in a
// fixed per-round order, which is what keeps sharded execution
// bit-identical to sequential execution.
func (s *State) Rand(r int) *rng.Rand { return s.rands[r] }

// Loads returns a fresh copy of the load vector — the input for the
// metrics package's imbalance measures.
func (s *State) Loads() []float64 {
	out := make([]float64, len(s.stacks))
	for r := range s.stacks {
		out[r] = s.stacks[r].Load()
	}
	return out
}

// MaxLoad returns the maximum resource load.
func (s *State) MaxLoad() float64 {
	m := 0.0
	for r := range s.stacks {
		if l := s.stacks[r].Load(); l > m {
			m = l
		}
	}
	return m
}

// Potential returns Φ(t) = Σ_r φ_r(t): the total weight of tasks that
// are cutting or above their resource's threshold (Eq. (1) for the
// tight analysis; Section 6's Φ for the user-controlled one).
func (s *State) Potential() float64 {
	p := 0.0
	for r := range s.stacks {
		p += s.stacks[r].OverflowWeight(s.thr[r])
	}
	return p
}

// ResourcePotential returns φ_r(t).
func (s *State) ResourcePotential(r int) float64 {
	return s.stacks[r].OverflowWeight(s.thr[r])
}

// ActiveTasks returns the number of tasks not yet accepted (cutting or
// above on their current resource).
func (s *State) ActiveTasks() int {
	c := 0
	for r := range s.stacks {
		c += s.stacks[r].OverflowCount(s.thr[r])
	}
	return c
}

// AcceptFraction returns the fraction of resources that could accept an
// extra task of weight wmax — the quantity Lemma 1 lower-bounds by
// ε/(1+ε) for above-average thresholds.
func (s *State) AcceptFraction() float64 {
	wmax := s.ts.WMax()
	c := 0
	for r := range s.stacks {
		if s.stacks[r].Load() <= s.thr[r]-wmax {
			c++
		}
	}
	return float64(c) / float64(len(s.stacks))
}

// MarkInFlight records that live task t was pulled off the migration
// path by the fault layer: its location becomes LocInFlight and its
// weight moves from placed to in-flight mass. Sequential use only.
func (s *State) MarkInFlight(t task.Task) {
	s.loc[t.ID] = LocInFlight
	s.inflightN++
	s.inflightW += t.Weight
}

// ClearInFlight releases task t from the in-flight ledger just before
// its (re-)delivery; the delivery itself rewrites the location.
func (s *State) ClearInFlight(t task.Task) {
	s.inflightN--
	s.inflightW -= t.Weight
	if s.inflightN == 0 {
		s.inflightW = 0 // shed float residue at the natural zero
	}
}

// InFlightLedger returns the count and total weight of live tasks
// currently held off-stack by the fault layer.
func (s *State) InFlightLedger() (int, float64) { return s.inflightN, s.inflightW }

// CheckInvariants validates global conservation: every task is on
// exactly one resource or accounted in-flight by the fault layer, the
// location map agrees with the stacks, loads equal summed weights,
// and placed + in-flight weight equals W.
func (s *State) CheckInvariants() error {
	seen := make([]bool, s.ts.M())
	total := 0.0
	for r := range s.stacks {
		if err := s.stacks[r].CheckInvariants(); err != nil {
			return fmt.Errorf("resource %d: %w", r, err)
		}
		for _, tk := range s.stacks[r].Tasks() {
			if tk.ID < 0 || tk.ID >= s.ts.M() {
				return fmt.Errorf("resource %d holds unknown task %d", r, tk.ID)
			}
			if s.ts.Removed(tk.ID) {
				return fmt.Errorf("resource %d holds departed task %d", r, tk.ID)
			}
			if seen[tk.ID] {
				return fmt.Errorf("task %d appears twice", tk.ID)
			}
			seen[tk.ID] = true
			if int(s.loc[tk.ID]) != r {
				return fmt.Errorf("task %d: location map says %d, stack says %d", tk.ID, s.loc[tk.ID], r)
			}
		}
		total += s.stacks[r].Load()
	}
	ledgerN, ledgerW := 0, 0.0
	for id, ok := range seen {
		if s.ts.Removed(id) {
			if s.loc[id] != -1 {
				return fmt.Errorf("departed task %d still mapped to resource %d", id, s.loc[id])
			}
			continue
		}
		if ok {
			continue
		}
		if s.loc[id] != LocInFlight {
			return fmt.Errorf("task %d lost", id)
		}
		// Held by the fault layer: off every stack, weight in flight.
		ledgerN++
		ledgerW += s.ts.Task(id).Weight
	}
	if ledgerN != s.inflightN {
		return fmt.Errorf("in-flight ledger count %d != recount %d", s.inflightN, ledgerN)
	}
	if math.Abs(ledgerW-s.inflightW) > 1e-6*(1+ledgerW) {
		return fmt.Errorf("in-flight ledger weight %v != recount %v", s.inflightW, ledgerW)
	}
	if math.Abs(total+ledgerW-s.ts.W()) > 1e-6*(1+s.ts.W()) {
		return fmt.Errorf("placed weight %v + in-flight %v != W %v", total, ledgerW, s.ts.W())
	}
	over := 0
	for r := range s.stacks {
		if s.over[r] != s.Overloaded(r) {
			return fmt.Errorf("overload tracker stale at resource %d: cached %v, actual %v",
				r, s.over[r], s.Overloaded(r))
		}
		if s.over[r] {
			over++
		}
	}
	if got := s.overCount.Load(); got != int64(over) {
		return fmt.Errorf("overloaded counter %d != recount %d", got, over)
	}
	return nil
}

// Migration is one task move decided in the propose phase of a round.
type Migration struct {
	Task task.Task
	Dest int32
}

// ProposeScratch holds one shard's reusable propose-phase buffers.
// Each concurrent ProposeRange call needs its own scratch; the zero
// value is ready for use and the buffers grow to a steady size after
// the first few rounds, keeping the hot path allocation-free.
type ProposeScratch struct {
	// Moves accumulates the shard's proposed migrations. Callers reset
	// it (Moves = Moves[:0]) between rounds and hand the union of all
	// shards' moves to DeliverMigrations.
	Moves []Migration

	idx   []int       // per-resource index scratch (user-controlled coin flips)
	tasks []task.Task // per-resource removed-task scratch
}

// RangeProposer is implemented by protocols whose propose phase can
// run over disjoint resource ranges — the contract of the sharded
// open-system engine. ProposeRange must draw randomness only from the
// per-resource streams of [lo, hi), so that any sharding of [0, n)
// produces the same move multiset as a single sequential sweep.
type RangeProposer interface {
	Protocol
	// ProposeRange appends the propose-phase decisions for resources
	// [lo, hi) to sc.Moves, removing the migrating tasks from their
	// source stacks. Safe to call concurrently on disjoint ranges with
	// distinct scratches.
	ProposeRange(s *State, lo, hi int, sc *ProposeScratch)
}

// rangeCapable lets composite protocols (Mixed) report whether every
// sub-protocol supports ranged proposing; the engine probes it before
// committing to the sharded path.
type rangeCapable interface{ RangeCapable() bool }

// CanPropose reports whether p supports the sharded propose/deliver
// split: it implements RangeProposer and, for composites, so does
// every sub-protocol.
func CanPropose(p Protocol) bool {
	if _, ok := p.(RangeProposer); !ok {
		return false
	}
	if rc, ok := p.(rangeCapable); ok {
		return rc.RangeCapable()
	}
	return true
}

// DeliverMigrations completes a round for an externally collected move
// set: it sorts moves by (destination, task ID), pushes them onto
// their destination stacks in that order, advances the round counter,
// and returns the round's statistics. Because the sort key is unique
// per move, the result — stacks, locations, stats, float rounding
// included — is independent of the order in which shards contributed
// moves. MovedWeight is accumulated exactly like the parallel
// Exchange: one partial sum per destination resource (in task-ID
// order), folded in ascending resource order — so the sequential and
// the exchange delivery paths agree bit for bit.
func (s *State) DeliverMigrations(moves []Migration) StepStats {
	if len(moves) > len(s.sortScratch) {
		s.sortScratch = make([]Migration, len(moves))
	}
	sortMigrations(moves, s.sortScratch)
	stats := StepStats{Migrations: len(moves)}
	curDest := int32(-1)
	run := 0.0
	for _, mv := range moves {
		if mv.Dest != curDest {
			if curDest >= 0 {
				stats.MovedWeight += run
				s.updateOverloaded(int(curDest))
			}
			curDest, run = mv.Dest, 0
		}
		run += mv.Task.Weight
		s.stacks[mv.Dest].Push(mv.Task)
		s.loc[mv.Task.ID] = mv.Dest
	}
	if curDest >= 0 {
		stats.MovedWeight += run
		s.updateOverloaded(int(curDest))
	}
	s.round++
	return stats
}

// sortMigrations orders by (dest, task ID) — insertion sort for the
// typically short per-round move lists, a bottom-up merge through the
// caller's scratch (len(buf) ≥ len(moves)) for large k, avoiding the
// insertion sort's O(k²) worst case on adversarial sizes.
func sortMigrations(moves, buf []Migration) {
	if len(moves) < 32 {
		for i := 1; i < len(moves); i++ {
			mv := moves[i]
			j := i - 1
			for j >= 0 && migrationLess(mv, moves[j]) {
				moves[j+1] = moves[j]
				j--
			}
			moves[j+1] = mv
		}
		return
	}
	for width := 1; width < len(moves); width *= 2 {
		for lo := 0; lo < len(moves); lo += 2 * width {
			mid := min(lo+width, len(moves))
			hi := min(lo+2*width, len(moves))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if migrationLess(moves[j], moves[i]) {
					buf[k] = moves[j]
					j++
				} else {
					buf[k] = moves[i]
					i++
				}
				k++
			}
			copy(buf[k:hi], moves[i:mid])
			copy(buf[k+mid-i:hi], moves[j:hi])
		}
		copy(moves, buf[:len(moves)])
	}
}

func migrationLess(a, b Migration) bool {
	if a.Dest != b.Dest {
		return a.Dest < b.Dest
	}
	return a.Task.ID < b.Task.ID
}

// popOverflow removes every cutting-or-above task of resource r into
// dst, maintaining the overload tracker — the resource-controlled
// removal step, shard-safe for disjoint r.
func (s *State) popOverflow(r int, dst []task.Task) []task.Task {
	dst = s.stacks[r].PopOverflowAppend(s.thr[r], dst)
	s.updateOverloaded(r)
	return dst
}

// removeForMigration removes the tasks at the given strictly
// increasing stack positions of resource r into dst — the
// user-controlled removal step. The tasks stay live (they are in
// flight to a destination); locations are rewritten at delivery.
// Shard-safe for disjoint r.
func (s *State) removeForMigration(r int, indices []int, dst []task.Task) []task.Task {
	dst = s.stacks[r].RemoveIndicesAppend(indices, dst)
	s.updateOverloaded(r)
	return dst
}
