package core

// The per-destination-shard delivery exchange. Sharded phases (the
// protocols' propose sweep, the dynamic engine's churn evacuation)
// produce task moves whose destinations are scattered across the whole
// resource range, so applying them used to funnel through one
// sequential sort-and-push barrier — the last O(moves) sequential
// section of a round. The Exchange removes it:
//
//  1. Route (parallel over SOURCE shards): each source shard sorts its
//     own move buffer once by the canonical (destination, task ID) key
//     and cuts it into per-destination-shard lanes. Because shards are
//     contiguous resource ranges, a sorted buffer segments into lanes
//     with a single linear scan — no copying, the lanes are subslices.
//  2. DeliverShard (parallel over DESTINATION shards): each destination
//     shard k-way-merges its inbound lanes — one sorted lane per source
//     shard — and applies the moves to its own resources in merged
//     order. Delivery is O(moves/shard · workers) parallel work instead
//     of O(moves log moves) sequential.
//  3. Finish (sequential, O(destinations touched)): folds the per-shard
//     statistics in canonical order and optionally advances the round.
//
// Determinism contract. The merge key (destination, task ID) is unique
// per batch, so every destination resource receives its tasks in
// ascending task-ID order regardless of which source shard proposed
// them or how the resource range is partitioned — the same order the
// sequential DeliverMigrations produces. Floating-point statistics are
// made partition-invariant by the same trick the engine uses for
// departures: MovedWeight is accumulated as one partial sum per
// destination resource (in merge order, which is task-ID order) and the
// partials are folded in ascending resource order at Finish. Both the
// per-resource partials and the fold order are independent of the shard
// boundaries, so the result is bit-identical for every worker count and
// every (measured-cost) boundary placement. DeliverMigrations uses the
// identical grouping, so the sequential path agrees bit for bit.
//
// The Exchange is allocation-free once warm: lane cuts, merge cursors
// and partial-sum buffers are reused across batches, and Route borrows
// the caller's move buffer instead of copying it.

// exSource is one source shard's outbound state for the current batch.
type exSource struct {
	moves []Migration // borrowed from the caller, sorted by (dest, task ID)
	cuts  []int       // len(bounds): moves[cuts[j]:cuts[j+1]] targets dest shard j
	sort  []Migration // merge-sort scratch, grown on demand
}

// exDest is one destination shard's inbound state for the current batch.
type exDest struct {
	heads    []int     // merge cursor per source lane
	partials []float64 // MovedWeight partial per destination resource, ascending
	count    int       // moves delivered into this shard
}

// Exchange is the reusable cross-shard move-delivery fabric for one
// State. Construct with NewExchange; one batch is
//
//	Route(i, moves)   for every source shard i   (parallel)
//	DeliverShard(s,j) for every dest shard j     (parallel, after a barrier)
//	Finish(s, advanceRound)                      (sequential)
//
// Route and DeliverShard are safe to call concurrently for distinct
// shard indices; the caller provides the barrier between the two
// phases. Every source shard must Route exactly once per batch, even
// with an empty move buffer.
type Exchange struct {
	bounds []int // shard boundaries: shard j owns resources [bounds[j], bounds[j+1])
	srcs   []exSource
	dsts   []exDest

	// Optional backpressure telemetry: lanes[i*w+j] accumulates the
	// moves source shard i routed into destination shard j's lane,
	// recorded at Route time — before the destination merge runs — so a
	// skewed migration pattern (everything targeting one shard) is
	// visible before it serialises the merge. Row i is written only by
	// source shard i's Route call, so concurrent Routes stay race-free.
	lanes []int64 // nil until EnableLaneStats
}

// NewExchange builds an exchange over the given shard boundaries
// (len = shards+1, ascending, bounds[0] = 0, bounds[last] = n). The
// boundaries are copied; move them later with SetBounds.
func NewExchange(bounds []int) *Exchange {
	w := len(bounds) - 1
	if w < 1 {
		panic("core: NewExchange needs at least one shard")
	}
	x := &Exchange{
		bounds: append([]int(nil), bounds...),
		srcs:   make([]exSource, w),
		dsts:   make([]exDest, w),
	}
	for i := range x.srcs {
		x.srcs[i].cuts = make([]int, w+1)
	}
	for j := range x.dsts {
		x.dsts[j].heads = make([]int, w)
	}
	return x
}

// Workers returns the number of shards the exchange was built for.
func (x *Exchange) Workers() int { return len(x.srcs) }

// Bounds returns the current shard boundaries (read-only use expected).
func (x *Exchange) Bounds() []int { return x.bounds }

// SetBounds replaces the shard boundaries — the measured-cost
// rebalancing hook. The shard count must not change, and no batch may
// be in flight. Results are unaffected by boundary placement (see the
// determinism contract above); only the work split moves.
func (x *Exchange) SetBounds(bounds []int) {
	if len(bounds) != len(x.bounds) {
		panic("core: SetBounds must keep the shard count")
	}
	copy(x.bounds, bounds)
}

// Route ingests source shard i's moves for the current batch: it sorts
// them in place by (destination, task ID) and segments the sorted
// buffer into one lane per destination shard. The buffer is borrowed
// until Finish — callers must not touch it in between. Safe to call
// concurrently for distinct i.
func (x *Exchange) Route(i int, moves []Migration) {
	src := &x.srcs[i]
	if len(moves) > len(src.sort) {
		src.sort = make([]Migration, len(moves))
	}
	sortMigrations(moves, src.sort)
	src.moves = moves
	idx := 0
	src.cuts[0] = 0
	for j := 1; j < len(x.bounds); j++ {
		b := int32(x.bounds[j])
		for idx < len(moves) && moves[idx].Dest < b {
			idx++
		}
		src.cuts[j] = idx
	}
	if x.lanes != nil {
		w := len(x.srcs)
		for j := 0; j < w; j++ {
			x.lanes[i*w+j] += int64(src.cuts[j+1] - src.cuts[j])
		}
	}
}

// EnableLaneStats turns on per-lane move counting (see LaneCounts).
// Call before the first batch; counting costs one add per lane per
// Route call.
func (x *Exchange) EnableLaneStats() {
	if x.lanes == nil {
		w := len(x.srcs)
		x.lanes = make([]int64, w*w)
	}
}

// LaneCounts returns the accumulated per-lane move counts since the
// last reset, as a row-major workers×workers matrix: entry [i*w+j] is
// the number of moves source shard i routed to destination shard j.
// Nil unless EnableLaneStats was called; the slice is owned by the
// exchange (read-only use expected, reset with ResetLaneCounts).
func (x *Exchange) LaneCounts() []int64 { return x.lanes }

// ResetLaneCounts zeroes the accumulated lane counters.
func (x *Exchange) ResetLaneCounts() {
	for i := range x.lanes {
		x.lanes[i] = 0
	}
}

// DeliverShard merges destination shard j's inbound lanes — already
// (dest, task ID)-sorted per lane — and applies the moves to s: stack
// push, location update, overload tracking, per-resource MovedWeight
// partials. It touches only shard j's resources (plus the delivered
// tasks' location entries, each owned by exactly one move), so it is
// safe to run concurrently for distinct j once every Route call has
// completed.
func (x *Exchange) DeliverShard(s *State, j int) {
	d := &x.dsts[j]
	d.count = 0
	d.partials = d.partials[:0]
	w := len(x.srcs)
	live := 0
	for i := 0; i < w; i++ {
		d.heads[i] = x.srcs[i].cuts[j]
		if d.heads[i] < x.srcs[i].cuts[j+1] {
			live++
		}
	}
	curDest := int32(-1)
	run := 0.0
	for live > 0 {
		best := -1
		var bm Migration
		for i := 0; i < w; i++ {
			h := d.heads[i]
			if h >= x.srcs[i].cuts[j+1] {
				continue
			}
			if mv := x.srcs[i].moves[h]; best < 0 || migrationLess(mv, bm) {
				best, bm = i, mv
			}
		}
		d.heads[best]++
		if d.heads[best] >= x.srcs[best].cuts[j+1] {
			live--
		}
		if bm.Dest != curDest {
			if curDest >= 0 {
				d.partials = append(d.partials, run)
				s.updateOverloaded(int(curDest))
			}
			curDest, run = bm.Dest, 0
		}
		run += bm.Task.Weight
		s.stacks[bm.Dest].Push(bm.Task)
		s.loc[bm.Task.ID] = bm.Dest
		d.count++
	}
	if curDest >= 0 {
		d.partials = append(d.partials, run)
		s.updateOverloaded(int(curDest))
	}
}

// Delivered returns the number of moves the most recent batch merged
// into destination shard j — the post-merge counterpart of the
// Route-time lane counts. Valid between Finish and the next batch's
// DeliverShard calls.
func (x *Exchange) Delivered(j int) int { return x.dsts[j].count }

// Finish closes the batch: it folds the per-shard statistics in
// canonical order — destination shards ascending, and within each shard
// the per-resource partials ascending, which concatenates to one global
// ascending-resource fold independent of the shard boundaries —
// releases the borrowed move buffers, and (for a protocol round)
// advances the round counter.
func (x *Exchange) Finish(s *State, advanceRound bool) StepStats {
	var st StepStats
	for j := range x.dsts {
		d := &x.dsts[j]
		st.Migrations += d.count
		for _, p := range d.partials {
			st.MovedWeight += p
		}
	}
	for i := range x.srcs {
		x.srcs[i].moves = nil
	}
	if advanceRound {
		s.round++
	}
	return st
}
