package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
)

// exchangeState builds a state with a clumped cross-shard move set:
// tasks pulled off several source resources with destinations spread
// over the whole range so every shard both sends and receives.
func exchangeState(t *testing.T) (*State, []Migration) {
	t.Helper()
	r := rng.NewSeeded(123)
	g := graph.Complete(24)
	ws := make([]float64, 300)
	for i := range ws {
		ws[i] = 1 + 9*r.Float64()
	}
	ts := task.NewSet(ws)
	placement := make([]int, len(ws))
	for i := range placement {
		placement[i] = i % 3 // pile everything on resources 0..2
	}
	s := NewState(g, ts, placement, AboveAverage{Eps: 0.5}, 7)
	var moves []Migration
	for src := 0; src < 3; src++ {
		idx := make([]int, 0, 60)
		for i := 0; i < 60; i++ {
			idx = append(idx, i)
		}
		for _, tk := range s.removeForMigration(src, idx, nil) {
			moves = append(moves, Migration{Task: tk, Dest: int32((tk.ID * 7) % 24)})
		}
	}
	return s, moves
}

type exchangeOutcome struct {
	stats StepStats
	round int
	loads []float64
	order [][]int
	locs  []int
}

func captureOutcome(s *State, st StepStats) exchangeOutcome {
	o := exchangeOutcome{stats: st, round: s.Round(), loads: s.Loads()}
	for r := 0; r < s.N(); r++ {
		var ids []int
		for _, tk := range s.Stack(r).Tasks() {
			ids = append(ids, tk.ID)
		}
		o.order = append(o.order, ids)
	}
	for id := 0; id < s.Tasks().M(); id++ {
		o.locs = append(o.locs, s.Location(id))
	}
	return o
}

// TestExchangeMatchesDeliverMigrations is the core equivalence check:
// for every shard-boundary layout (including uneven, measured-cost
// style cuts) and every way the moves are scattered over source
// shards, the exchange must reproduce the sequential DeliverMigrations
// outcome exactly — stacks, locations, round counter, and the float
// rounding of MovedWeight.
func TestExchangeMatchesDeliverMigrations(t *testing.T) {
	s, moves := exchangeState(t)
	ref := captureOutcome(s, s.DeliverMigrations(append([]Migration(nil), moves...)))
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("reference state: %v", err)
	}

	layouts := [][]int{
		{0, 24},                       // one shard: the sequential degenerate case
		{0, 12, 24},                   // even split
		{0, 6, 12, 18, 24},            // four even shards
		{0, 1, 3, 20, 24},             // heavily skewed (measured-cost style) cuts
		{0, 5, 9, 14, 17, 21, 23, 24}, // seven uneven shards
	}
	r := rng.NewSeeded(5)
	for _, bounds := range layouts {
		w := len(bounds) - 1
		s2, moves2 := exchangeState(t)
		x := NewExchange(bounds)
		// Scatter the moves over source shards at random: which worker
		// proposed a move must not matter.
		lanes := make([][]Migration, w)
		for _, mv := range moves2 {
			i := r.Intn(w)
			lanes[i] = append(lanes[i], mv)
		}
		for i := 0; i < w; i++ {
			x.Route(i, lanes[i])
		}
		for j := 0; j < w; j++ {
			x.DeliverShard(s2, j)
		}
		got := captureOutcome(s2, x.Finish(s2, true))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("bounds %v: exchange diverges from DeliverMigrations:\ngot  %+v\nwant %+v", bounds, got, ref)
		}
		if err := s2.CheckInvariants(); err != nil {
			t.Fatalf("bounds %v: %v", bounds, err)
		}
	}
}

// TestExchangeEmptyBatchAndRoundAdvance pins the bookkeeping edges: an
// all-empty batch delivers nothing, Finish(advance=false) — the
// evacuation mode — leaves the round counter alone, and a reused
// exchange does not leak the previous batch.
func TestExchangeEmptyBatchAndRoundAdvance(t *testing.T) {
	s, moves := exchangeState(t)
	x := NewExchange([]int{0, 8, 16, 24})
	// Batch 1: real moves, no round advance (evacuation mode).
	x.Route(0, moves)
	x.Route(1, nil)
	x.Route(2, nil)
	for j := 0; j < 3; j++ {
		x.DeliverShard(s, j)
	}
	st := x.Finish(s, false)
	if st.Migrations != len(moves) {
		t.Fatalf("delivered %d of %d moves", st.Migrations, len(moves))
	}
	if s.Round() != 0 {
		t.Fatalf("Finish(advance=false) advanced the round to %d", s.Round())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Batch 2: empty everywhere, with a round advance.
	for i := 0; i < 3; i++ {
		x.Route(i, nil)
	}
	for j := 0; j < 3; j++ {
		x.DeliverShard(s, j)
	}
	st = x.Finish(s, true)
	if st.Migrations != 0 || st.MovedWeight != 0 {
		t.Fatalf("empty batch delivered %+v", st)
	}
	if s.Round() != 1 {
		t.Fatalf("round counter %d after one advancing batch", s.Round())
	}
}

// TestExchangeSetBounds moves the boundaries between batches and
// checks deliveries still land correctly — the rebalancing contract.
func TestExchangeSetBounds(t *testing.T) {
	s, moves := exchangeState(t)
	ref := captureOutcome(s, s.DeliverMigrations(append([]Migration(nil), moves...)))

	s2, moves2 := exchangeState(t)
	x := NewExchange([]int{0, 8, 16, 24})
	x.SetBounds([]int{0, 2, 21, 24})
	x.Route(0, moves2)
	x.Route(1, nil)
	x.Route(2, nil)
	for j := 0; j < 3; j++ {
		x.DeliverShard(s2, j)
	}
	got := captureOutcome(s2, x.Finish(s2, true))
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("rebalanced bounds diverge:\ngot  %+v\nwant %+v", got, ref)
	}
}
