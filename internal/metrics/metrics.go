// Package metrics quantifies how (im)balanced a load vector is. The
// paper's success criterion is binary — every load at or below the
// threshold — but the experiment reports also track how far a
// configuration is from balance while a protocol runs: the max/average
// gap (the classical balls-into-bins objective), the coefficient of
// variation, the Gini coefficient, and the fraction of overloaded
// resources.
package metrics

import (
	"math"
	"sort"
)

// Snapshot summarises one load vector.
type Snapshot struct {
	N          int
	Total      float64
	Average    float64
	Max        float64
	Min        float64
	Gap        float64 // Max − Average
	CV         float64 // stddev/mean (0 when mean is 0)
	Gini       float64 // 0 = perfectly even, →1 = concentrated
	Overloaded int     // resources with load > threshold
	OverFrac   float64 // Overloaded / N
}

// Measure computes a Snapshot of loads against a uniform threshold.
// It panics on an empty vector.
func Measure(loads []float64, threshold float64) Snapshot {
	if len(loads) == 0 {
		panic("metrics: empty load vector")
	}
	s := Snapshot{N: len(loads), Min: loads[0], Max: loads[0]}
	for _, l := range loads {
		s.Total += l
		if l > s.Max {
			s.Max = l
		}
		if l < s.Min {
			s.Min = l
		}
		if l > threshold {
			s.Overloaded++
		}
	}
	s.Average = s.Total / float64(s.N)
	s.Gap = s.Max - s.Average
	s.OverFrac = float64(s.Overloaded) / float64(s.N)
	if s.Average != 0 {
		varSum := 0.0
		for _, l := range loads {
			d := l - s.Average
			varSum += d * d
		}
		s.CV = math.Sqrt(varSum/float64(s.N)) / s.Average
	}
	s.Gini = Gini(loads)
	return s
}

// Gini returns the Gini coefficient of a non-negative load vector:
// G = Σ_i (2i − n − 1)·x_(i) / (n·Σ x), with x_(i) sorted ascending.
// Returns 0 for all-zero vectors.
func Gini(loads []float64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	total := 0.0
	weighted := 0.0
	for i, l := range sorted {
		if l < 0 {
			panic("metrics: Gini requires non-negative loads")
		}
		total += l
		weighted += float64(2*(i+1)-n-1) * l
	}
	if total == 0 {
		return 0
	}
	return weighted / (float64(n) * total)
}

// MakespanRatio returns Max/Average — the standard scheduling-quality
// ratio (1 is perfect). Returns 1 for a zero-average vector.
func MakespanRatio(loads []float64) float64 {
	s := Measure(loads, math.Inf(1))
	if s.Average == 0 {
		return 1
	}
	return s.Max / s.Average
}
