package metrics

import (
	"math"
	"testing"
)

func TestMeasureBasics(t *testing.T) {
	s := Measure([]float64{1, 2, 3, 6}, 2.5)
	if s.N != 4 || s.Total != 12 || s.Average != 3 || s.Max != 6 || s.Min != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Gap != 3 {
		t.Fatalf("gap=%v", s.Gap)
	}
	if s.Overloaded != 2 || s.OverFrac != 0.5 {
		t.Fatalf("overloaded=%d frac=%v", s.Overloaded, s.OverFrac)
	}
	// Population stddev of {1,2,3,6} around 3: sqrt((4+1+0+9)/4)=sqrt(3.5).
	wantCV := math.Sqrt(3.5) / 3
	if math.Abs(s.CV-wantCV) > 1e-12 {
		t.Fatalf("cv=%v want %v", s.CV, wantCV)
	}
}

func TestMeasureUniformVector(t *testing.T) {
	s := Measure([]float64{5, 5, 5}, 10)
	if s.Gap != 0 || s.CV != 0 || s.Gini != 0 || s.Overloaded != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestMeasureZeroLoads(t *testing.T) {
	s := Measure([]float64{0, 0}, 1)
	if s.CV != 0 || s.Gini != 0 || s.Average != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestMeasurePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Measure(nil, 1)
}

func TestGiniKnownValues(t *testing.T) {
	// Perfectly concentrated: [0,0,0,12] → G = (n-1)/n = 0.75.
	if g := Gini([]float64{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated gini=%v", g)
	}
	// Two equal halves on two of four: [0,0,6,6] → sorted weights:
	// Σ(2i-n-1)x = (2·3-5)·6 + (2·4-5)·6 = 6+18 = 24; 24/(4·12)=0.5.
	if g := Gini([]float64{0, 0, 6, 6}); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("half gini=%v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty gini=%v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero gini=%v", g)
	}
}

func TestGiniInvariantToScale(t *testing.T) {
	a := Gini([]float64{1, 2, 3, 4})
	b := Gini([]float64{10, 20, 30, 40})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gini not scale-invariant: %v vs %v", a, b)
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a := Gini([]float64{4, 1, 3, 2})
	b := Gini([]float64{1, 2, 3, 4})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gini depends on order: %v vs %v", a, b)
	}
	// Input must not be mutated.
	in := []float64{4, 1}
	Gini(in)
	if in[0] != 4 {
		t.Fatal("Gini mutated its input")
	}
}

func TestGiniPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gini([]float64{-1, 2})
}

func TestMakespanRatio(t *testing.T) {
	if r := MakespanRatio([]float64{2, 2, 2}); r != 1 {
		t.Fatalf("ratio=%v", r)
	}
	if r := MakespanRatio([]float64{0, 0, 6}); r != 3 {
		t.Fatalf("ratio=%v", r)
	}
	if r := MakespanRatio([]float64{0, 0}); r != 1 {
		t.Fatalf("zero ratio=%v", r)
	}
}
