// Package faults is the deterministic message-fault layer of the
// open-system engine: it sits between the propose and deliver phases
// and decides, per migration message, whether the message is
// delivered, lost, delayed or duplicated, and whether a scripted
// partition window blocks it outright.
//
// Every decision is a stateless keyed draw — rng.Hash3 over
// (fault seed, task ID, round, attempt) — so the outcome is a pure
// function of the run configuration, independent of shard partition
// and worker count: the golden cross-worker replays extend to faulty
// runs unchanged. Lost messages enter an in-flight ledger and are
// retried with capped exponential backoff until a per-task timeout
// re-homes the task at its source; delayed messages sit in a delay
// wheel and deliver k rounds later in canonical order; duplicated
// messages spawn a late copy that the (task, flight-token) dedup
// table drops on arrival. Weight conservation holds over placed +
// in-flight mass throughout (core.State tracks the ledger via
// MarkInFlight/ClearInFlight and CheckInvariants balances both).
package faults

import "fmt"

// Partition is one scripted connectivity window: during rounds
// [Start, End) the member resources form their own network component,
// cut off from the rest of the fleet (and from the members of any
// other concurrently active window). Migrations across the cut fail
// fast — they bounce back to their source resource — and the engine
// removes the members from its reachable set, so dispatch and the
// threshold tuner pre-compensate for the unreachable capacity.
type Partition struct {
	Start   int   // first partitioned round
	End     int   // first round after the window (End > Start)
	Members []int // the isolated resources
}

// Plan configures the fault layer. The zero value injects nothing (a
// run with an all-zero plan is bit-identical to one without a plan,
// and stays allocation-free in steady state).
type Plan struct {
	// Loss is the per-message loss probability. A lost migration
	// enters the in-flight ledger and is retried with capped
	// exponential backoff; after Timeout rounds in flight the task
	// gives up and re-homes at its source resource.
	Loss float64
	// DelayProb is the per-message delay probability; a delayed
	// migration delivers 1..DelayMax rounds late (uniform).
	DelayProb float64
	// DelayMax bounds the delay distribution. Required (≥ 1) when
	// DelayProb > 0; also bounds the lateness of duplicate copies.
	DelayMax int
	// DupProb is the per-message duplication probability: the message
	// delivers normally and a duplicate copy arrives 1..max(DelayMax,1)
	// rounds later, to be dropped by the dedup table.
	DupProb float64

	// RetryBase is the backoff before the first retry of a lost
	// message, in rounds (default 1). The gap doubles per failed
	// attempt, capped at RetryCap (default 8).
	RetryBase int
	RetryCap  int
	// Timeout is the maximum rounds a task may sit in the ledger
	// before it re-homes at its source (default 30).
	Timeout int

	// Partitions are the scripted connectivity windows.
	Partitions []Partition

	// Seed is the dedicated fault-stream seed. The injector mixes it
	// with the run seed, so the same plan replays differently across
	// run seeds but identically across worker counts.
	Seed uint64
}

// withDefaults returns p with the retry-policy zero values filled in.
func (p Plan) withDefaults() Plan {
	if p.RetryBase == 0 {
		p.RetryBase = 1
	}
	if p.RetryCap == 0 {
		p.RetryCap = 8
	}
	if p.Timeout == 0 {
		p.Timeout = 30
	}
	return p
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	return p != nil && (p.Loss > 0 || p.DelayProb > 0 || p.DupProb > 0 || len(p.Partitions) > 0)
}

// Validate checks the plan against an n-resource fleet.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for name, v := range map[string]float64{"Loss": p.Loss, "DelayProb": p.DelayProb, "DupProb": p.DupProb} {
		if v < 0 || v >= 1 {
			return fmt.Errorf("faults: %s %v must be in [0,1)", name, v)
		}
	}
	if p.DelayProb > 0 && p.DelayMax < 1 {
		return fmt.Errorf("faults: DelayProb %v needs DelayMax >= 1 (got %d)", p.DelayProb, p.DelayMax)
	}
	if p.DelayMax < 0 {
		return fmt.Errorf("faults: DelayMax %d must be >= 0", p.DelayMax)
	}
	if p.RetryBase < 0 || p.RetryCap < 0 || p.Timeout < 0 {
		return fmt.Errorf("faults: retry policy (base %d, cap %d, timeout %d) must be non-negative",
			p.RetryBase, p.RetryCap, p.Timeout)
	}
	d := p.withDefaults()
	if d.RetryCap < d.RetryBase {
		return fmt.Errorf("faults: RetryCap %d below RetryBase %d", d.RetryCap, d.RetryBase)
	}
	for i, w := range p.Partitions {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("faults: partition %d: window [%d,%d) is empty or negative", i, w.Start, w.End)
		}
		if len(w.Members) == 0 {
			return fmt.Errorf("faults: partition %d: no members", i)
		}
		if len(w.Members) >= n {
			return fmt.Errorf("faults: partition %d: isolates %d of %d resources (the main component would be empty)",
				i, len(w.Members), n)
		}
		for _, m := range w.Members {
			if m < 0 || m >= n {
				return fmt.Errorf("faults: partition %d: member %d out of range [0,%d)", i, m, n)
			}
		}
	}
	return nil
}
