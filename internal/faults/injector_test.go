package faults

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/task"
)

// testState builds an n-resource complete graph holding m tasks, all
// placed at resource 0, plus a synthetic propose batch that spreads
// them across the other resources. The injector only reads locations
// and the in-flight counters, so the stacks can stay untouched.
func testState(n, m int) (*core.State, []core.Migration) {
	g := graph.Complete(n)
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = 1 + float64(i%3)
	}
	ts := task.NewSet(ws)
	s := core.NewState(g, ts, make([]int, m), core.AboveAverage{Eps: 0.5}, 1)
	moves := make([]core.Migration, m)
	for i := 0; i < m; i++ {
		moves[i] = core.Migration{Task: ts.Task(i), Dest: int32(1 + i%(n-1))}
	}
	return s, moves
}

// The fault draws are keyed off (task, round, attempt), never off the
// shard split: any worker count must keep, lose, delay and duplicate
// exactly the same messages and assign the same flight tokens.
func TestInjectorWorkerInvariance(t *testing.T) {
	plan := &Plan{Loss: 0.3, DelayProb: 0.3, DelayMax: 3, DupProb: 0.2}
	type snapshot struct {
		kept   []core.Migration
		c      Counters
		ledger []flight
		pend   []uint64
		wheel  [][]wheelRec
		inN    int
		inW    float64
	}
	var ref *snapshot
	for _, workers := range []int{1, 2, 4, 8} {
		s, moves := testState(8, 64)
		inj := NewInjector(plan, 8, workers, 7)
		per := (len(moves) + workers - 1) / workers
		kept := []core.Migration{}
		for i := 0; i < workers; i++ {
			lo := min(i*per, len(moves))
			hi := min(lo+per, len(moves))
			chunk := append([]core.Migration(nil), moves[lo:hi]...)
			kept = append(kept, inj.FilterShard(i, 5, s, chunk)...)
		}
		inj.Collect(5, s)
		inN, inW := s.InFlightLedger()
		got := &snapshot{kept, inj.c, inj.ledger, inj.pend, inj.wheel, inN, inW}
		if ref == nil {
			ref = got
			if got.c.Lost == 0 || got.c.Delayed == 0 || got.c.Duplicated == 0 {
				t.Fatalf("weak exercise: counters %+v", got.c)
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverges from workers=1:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestInjectorDelayedDelivery(t *testing.T) {
	plan := &Plan{DelayProb: 0.9, DelayMax: 3}
	s, moves := testState(8, 32)
	inj := NewInjector(plan, 8, 1, 3)
	dest := map[int]int32{}
	for _, mv := range moves {
		dest[mv.Task.ID] = mv.Dest
	}
	kept := inj.FilterShard(0, 10, s, moves)
	inj.Collect(10, s)
	if inj.c.Delayed == 0 {
		t.Fatal("no messages delayed at p=0.9")
	}
	delivered := map[int]int32{}
	for _, mv := range kept {
		delivered[mv.Task.ID] = mv.Dest
	}
	for r := 11; r <= 14; r++ {
		for _, mv := range inj.Tick(r, s, nil) {
			if _, dup := delivered[mv.Task.ID]; dup {
				t.Fatalf("task %d delivered twice", mv.Task.ID)
			}
			delivered[mv.Task.ID] = mv.Dest
		}
	}
	if len(delivered) != len(dest) {
		t.Fatalf("%d of %d messages delivered", len(delivered), len(dest))
	}
	for id, d := range delivered {
		if d != dest[id] {
			t.Fatalf("task %d delivered to %d, proposed %d", id, d, dest[id])
		}
	}
	if n, w := s.InFlightLedger(); n != 0 || w != 0 {
		t.Fatalf("in-flight residue: %d tasks, weight %v", n, w)
	}
}

func TestInjectorRetryAndTimeout(t *testing.T) {
	plan := &Plan{Loss: 0.6, RetryBase: 1, RetryCap: 4, Timeout: 6}
	s, moves := testState(8, 128)
	inj := NewInjector(plan, 8, 1, 5)
	src := int32(0) // every test task lives at resource 0
	dest := map[int]int32{}
	for _, mv := range moves {
		dest[mv.Task.ID] = mv.Dest
	}
	kept := inj.FilterShard(0, 0, s, moves)
	inj.Collect(0, s)
	if inj.c.Lost == 0 {
		t.Fatal("no messages lost at p=0.6")
	}
	if got := int64(len(moves) - len(kept)); got != inj.c.Lost {
		t.Fatalf("%d moves missing, %d counted lost", got, inj.c.Lost)
	}
	delivered, rehomed := map[int]int32{}, 0
	for r := 1; r <= 2*6; r++ {
		for _, mv := range inj.Tick(r, s, nil) {
			if _, dup := delivered[mv.Task.ID]; dup {
				t.Fatalf("task %d delivered twice", mv.Task.ID)
			}
			delivered[mv.Task.ID] = mv.Dest
			if mv.Dest == src {
				rehomed++
			}
		}
	}
	if inj.LedgerSize() != 0 {
		t.Fatalf("%d flights still ledgered after the deadline", inj.LedgerSize())
	}
	if int64(len(delivered)) != inj.c.Lost {
		t.Fatalf("%d lost, %d re-delivered", inj.c.Lost, len(delivered))
	}
	if int64(rehomed) != inj.c.Timeouts {
		t.Fatalf("%d re-homed at source, %d timeouts counted", rehomed, inj.c.Timeouts)
	}
	for id, d := range delivered {
		if d != dest[id] && d != src {
			t.Fatalf("task %d surfaced at %d (proposed %d)", id, d, dest[id])
		}
	}
	if n, w := s.InFlightLedger(); n != 0 || w != 0 {
		t.Fatalf("in-flight residue: %d tasks, weight %v", n, w)
	}
}

func TestInjectorDedupsDuplicates(t *testing.T) {
	plan := &Plan{DupProb: 0.9}
	s, moves := testState(8, 32)
	inj := NewInjector(plan, 8, 1, 9)
	kept := inj.FilterShard(0, 3, s, append([]core.Migration(nil), moves...))
	inj.Collect(3, s)
	if len(kept) != len(moves) {
		t.Fatalf("duplication dropped originals: kept %d of %d", len(kept), len(moves))
	}
	if inj.c.Duplicated == 0 {
		t.Fatal("no duplicates at p=0.9")
	}
	for r := 4; r <= 6; r++ {
		if due := inj.Tick(r, s, nil); len(due) != 0 {
			t.Fatalf("round %d: duplicate copies delivered: %v", r, due)
		}
	}
	if inj.c.Deduped != inj.c.Duplicated {
		t.Fatalf("%d duplicates, %d deduped", inj.c.Duplicated, inj.c.Deduped)
	}
}

func TestInjectorPartitionWindows(t *testing.T) {
	plan := &Plan{Partitions: []Partition{{Start: 2, End: 4, Members: []int{1, 2}}}}
	s, _ := testState(8, 4)
	inj := NewInjector(plan, 8, 1, 1)
	if iso, rest := inj.StartRound(0); len(iso) != 0 || len(rest) != 0 {
		t.Fatalf("deltas before the window: iso %v rest %v", iso, rest)
	}
	iso, rest := inj.StartRound(2)
	if !reflect.DeepEqual(iso, []int{1, 2}) || len(rest) != 0 {
		t.Fatalf("window open: iso %v rest %v", iso, rest)
	}
	if !inj.Isolated(1) || inj.Isolated(0) {
		t.Fatal("isolation flags wrong")
	}
	ts := s.Tasks()
	moves := []core.Migration{
		{Task: ts.Task(0), Dest: 1}, // crosses the cut → bounces to src 0
		{Task: ts.Task(1), Dest: 3}, // stays in the main component
	}
	got := inj.FilterShard(0, 2, s, moves)
	if len(got) != 2 || got[0].Dest != 0 || got[1].Dest != 3 {
		t.Fatalf("filtered moves %v", got)
	}
	inj.Collect(2, s)
	if inj.c.PartitionBlocked != 1 {
		t.Fatalf("PartitionBlocked = %d", inj.c.PartitionBlocked)
	}
	if iso, rest = inj.StartRound(4); len(iso) != 0 || !reflect.DeepEqual(rest, []int{1, 2}) {
		t.Fatalf("window close: iso %v rest %v", iso, rest)
	}
	if inj.Isolated(1) {
		t.Fatal("still isolated after the window")
	}
}
