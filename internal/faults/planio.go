package faults

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Fault-plan ingestion: unreliable-network scenarios — hand-written or
// generated — load from files in the engine's usual two line formats:
//
//	CSV:   kind,a,b,c          (optional "kind,..." header, '#' comments)
//	         loss,P
//	         delay,P,MAX
//	         dup,P
//	         retry,BASE,CAP,TIMEOUT
//	         seed,S
//	         partition,START,END,MEMBERS   members as ranges "0-99;256;300-310"
//	JSONL: one directive object per line:
//	         {"loss": 0.01}
//	         {"delay_prob": 0.05, "delay_max": 4}
//	         {"dup": 0.001}
//	         {"retry_base": 1, "retry_cap": 8, "timeout": 30}
//	         {"seed": 7}
//	         {"partition": {"start": 100, "end": 200, "members": [0,1,2]}}
//
// Mirroring the churn-event loader, every parse or validation error
// carries its source line number, and the assembled plan runs the full
// Validate check against the fleet size before it is returned — a
// partition window that isolates the whole fleet is a load error
// naming its line, not a mid-run surprise.

// MemberResolver maps a failure-domain name (a rack or zone label) to
// its member resources, letting partition directives say
// "partition,100,200,rack3" instead of spelling out index ranges.
// recovery.(*Topology).Resolve satisfies it.
type MemberResolver func(name string) ([]int, bool)

// ReadPlanCSV parses kind,a,b,c fault directives from r for an
// n-resource fleet.
func ReadPlanCSV(r io.Reader, n int) (*Plan, error) {
	return ReadPlanCSVNamed(r, n, nil)
}

// ReadPlanCSVNamed is ReadPlanCSV with a failure-domain name resolver:
// partition member lists may mix index ranges with rack/zone names
// ("0-99;rack3;zone1"). A nil resolver accepts indices only.
func ReadPlanCSVNamed(r io.Reader, n int, resolve MemberResolver) (*Plan, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // row arity depends on the directive kind
	cr.TrimLeadingSpace = true
	p := &Plan{}
	var partLines []int
	first := true
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("faults: plan csv: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(fields[0]), "kind") {
				continue // header row
			}
		}
		line, _ := cr.FieldPos(0)
		kind := strings.ToLower(strings.TrimSpace(fields[0]))
		args := fields[1:]
		bad := func(format string, a ...any) error {
			return fmt.Errorf("faults: plan csv line %d: %s", line, fmt.Sprintf(format, a...))
		}
		arity := func(want int) error {
			if len(args) != want {
				return bad("%q takes %d fields, got %d", kind, want, len(args))
			}
			return nil
		}
		switch kind {
		case "loss":
			if err := arity(1); err != nil {
				return nil, err
			}
			if p.Loss, err = parseProb(args[0]); err != nil {
				return nil, bad("%v", err)
			}
		case "delay":
			if err := arity(2); err != nil {
				return nil, err
			}
			if p.DelayProb, err = parseProb(args[0]); err != nil {
				return nil, bad("%v", err)
			}
			if p.DelayMax, err = parseCount(args[1]); err != nil {
				return nil, bad("%v", err)
			}
		case "dup":
			if err := arity(1); err != nil {
				return nil, err
			}
			if p.DupProb, err = parseProb(args[0]); err != nil {
				return nil, bad("%v", err)
			}
		case "retry":
			if err := arity(3); err != nil {
				return nil, err
			}
			for i, dst := range []*int{&p.RetryBase, &p.RetryCap, &p.Timeout} {
				if *dst, err = parseCount(args[i]); err != nil {
					return nil, bad("%v", err)
				}
			}
		case "seed":
			if err := arity(1); err != nil {
				return nil, err
			}
			s, err := strconv.ParseUint(strings.TrimSpace(args[0]), 10, 64)
			if err != nil {
				return nil, bad("bad seed %q", args[0])
			}
			p.Seed = s
		case "partition":
			if err := arity(3); err != nil {
				return nil, err
			}
			var w Partition
			if w.Start, err = parseCount(args[0]); err != nil {
				return nil, bad("%v", err)
			}
			if w.End, err = parseCount(args[1]); err != nil {
				return nil, bad("%v", err)
			}
			if w.Members, err = parseMembersWith(args[2], resolve); err != nil {
				return nil, bad("%v", err)
			}
			p.Partitions = append(p.Partitions, w)
			partLines = append(partLines, line)
		default:
			return nil, bad("unknown directive %q (want loss, delay, dup, retry, seed or partition)", kind)
		}
	}
	if err := validateLoadedPlan(p, partLines, n); err != nil {
		return nil, fmt.Errorf("faults: plan csv %w", err)
	}
	return p, nil
}

// planRecord is one parsed JSONL fault directive. Every field is a
// pointer so an absent key is distinguishable from an explicit zero,
// and one line may set several related fields at once.
type planRecord struct {
	Loss      *float64         `json:"loss"`
	DelayProb *float64         `json:"delay_prob"`
	DelayMax  *int             `json:"delay_max"`
	Dup       *float64         `json:"dup"`
	RetryBase *int             `json:"retry_base"`
	RetryCap  *int             `json:"retry_cap"`
	Timeout   *int             `json:"timeout"`
	Seed      *uint64          `json:"seed"`
	Partition *partitionRecord `json:"partition"`
}

// partitionRecord is the JSONL partition-window payload. Members and
// Ranges are alternatives: explicit resource IDs, or the CSV loader's
// "0-99;256" range syntax.
type partitionRecord struct {
	Start   *int   `json:"start"`
	End     *int   `json:"end"`
	Members []int  `json:"members"`
	Ranges  string `json:"ranges"`
}

// ReadPlanJSONL parses one fault-directive object per line for an
// n-resource fleet.
func ReadPlanJSONL(r io.Reader, n int) (*Plan, error) {
	return ReadPlanJSONLNamed(r, n, nil)
}

// ReadPlanJSONLNamed is ReadPlanJSONL with a failure-domain name
// resolver: a partition's "ranges" string may mix index ranges with
// rack/zone names. A nil resolver accepts indices only.
func ReadPlanJSONLNamed(r io.Reader, n int, resolve MemberResolver) (*Plan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := &Plan{}
	var partLines []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec planRecord
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("faults: plan jsonl line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("faults: plan jsonl line %d: trailing data after the directive object", line)
		}
		set := 0
		if rec.Loss != nil {
			p.Loss = *rec.Loss
			set++
		}
		if rec.DelayProb != nil {
			p.DelayProb = *rec.DelayProb
			set++
		}
		if rec.DelayMax != nil {
			p.DelayMax = *rec.DelayMax
			set++
		}
		if rec.Dup != nil {
			p.DupProb = *rec.Dup
			set++
		}
		if rec.RetryBase != nil {
			p.RetryBase = *rec.RetryBase
			set++
		}
		if rec.RetryCap != nil {
			p.RetryCap = *rec.RetryCap
			set++
		}
		if rec.Timeout != nil {
			p.Timeout = *rec.Timeout
			set++
		}
		if rec.Seed != nil {
			p.Seed = *rec.Seed
			set++
		}
		if pr := rec.Partition; pr != nil {
			set++
			if pr.Start == nil || pr.End == nil {
				return nil, fmt.Errorf("faults: plan jsonl line %d: partition must carry \"start\" and \"end\"", line)
			}
			if len(pr.Members) > 0 && pr.Ranges != "" {
				return nil, fmt.Errorf("faults: plan jsonl line %d: partition carries both \"members\" and \"ranges\"", line)
			}
			members := pr.Members
			if pr.Ranges != "" {
				var err error
				if members, err = parseMembersWith(pr.Ranges, resolve); err != nil {
					return nil, fmt.Errorf("faults: plan jsonl line %d: %v", line, err)
				}
			}
			p.Partitions = append(p.Partitions, Partition{Start: *pr.Start, End: *pr.End, Members: members})
			partLines = append(partLines, line)
		}
		if set == 0 {
			return nil, fmt.Errorf("faults: plan jsonl line %d: directive sets nothing", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faults: plan jsonl: %w", err)
	}
	if err := validateLoadedPlan(p, partLines, n); err != nil {
		return nil, fmt.Errorf("faults: plan jsonl %w", err)
	}
	return p, nil
}

// validateLoadedPlan runs the full plan check and translates partition
// indices back into source line numbers.
func validateLoadedPlan(p *Plan, partLines []int, n int) error {
	err := p.Validate(n)
	if err == nil {
		return nil
	}
	msg := strings.TrimPrefix(err.Error(), "faults: ")
	// Partition errors name their index; map it to the defining line.
	var idx int
	if k, scanErr := fmt.Sscanf(msg, "partition %d:", &idx); scanErr == nil && k == 1 && idx >= 0 && idx < len(partLines) {
		return fmt.Errorf("line %d: %s", partLines[idx], msg)
	}
	return fmt.Errorf("invalid: %s", msg)
}

// LoadPlanFile reads a fault plan for an n-resource fleet from path,
// picking the format by extension: .csv → CSV, .jsonl/.ndjson/.json →
// JSONL.
func LoadPlanFile(path string, n int) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: plan: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadPlanCSV(f, n)
	case ".jsonl", ".ndjson", ".json":
		return ReadPlanJSONL(f, n)
	default:
		return nil, fmt.Errorf("faults: plan %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}

// LoadPlanFileNamed is LoadPlanFile with a failure-domain name
// resolver for the partition member lists.
func LoadPlanFileNamed(path string, n int, resolve MemberResolver) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: plan: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadPlanCSVNamed(f, n, resolve)
	case ".jsonl", ".ndjson", ".json":
		return ReadPlanJSONLNamed(f, n, resolve)
	default:
		return nil, fmt.Errorf("faults: plan %s: unknown extension %q (want .csv, .jsonl, .ndjson or .json)", path, ext)
	}
}

// ParseMembers parses the loader's member-range syntax — semicolon- or
// space-separated entries, each a single resource ID "256" or an
// inclusive range "0-99" — into a member list.
func ParseMembers(spec string) ([]int, error) {
	return parseMembersWith(spec, nil)
}

// parseMembersWith parses member entries, resolving non-numeric
// entries as failure-domain names when a resolver is supplied.
func parseMembersWith(spec string, resolve MemberResolver) ([]int, error) {
	var members []int
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ' ' }) {
		a, b, numeric := parseIndexRange(part)
		if !numeric {
			if resolve != nil {
				if domain, ok := resolve(part); ok {
					members = append(members, domain...)
					continue
				}
				return nil, fmt.Errorf("member entry %q is neither an index range nor a known rack/zone name", part)
			}
			return nil, fmt.Errorf("bad member range %q", part)
		}
		if b < a {
			return nil, fmt.Errorf("member range %q runs backwards", part)
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("member range %q spans %d resources", part, b-a+1)
		}
		for r := a; r <= b; r++ {
			members = append(members, r)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("empty member list %q", spec)
	}
	return members, nil
}

// parseIndexRange parses "256" or "0-99" into an inclusive [a, b]
// index pair; numeric is false when the entry is not index-shaped
// (e.g. a domain name like "rack3", including names containing
// hyphens).
func parseIndexRange(part string) (a, b int, numeric bool) {
	lo, hi, cut := strings.Cut(part, "-")
	a, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return 0, 0, false
	}
	b = a
	if cut {
		if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
			return 0, 0, false
		}
	}
	return a, b, true
}

// parseProb parses a probability field (any float; range-checked by
// Plan.Validate, but NaN and absurd values fail here with the line).
func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	if v < 0 || v >= 1 || v != v {
		return 0, fmt.Errorf("probability %v must be in [0,1)", v)
	}
	return v, nil
}

// parseCount parses a non-negative integer field.
func parseCount(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad count %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("count %d must be non-negative", v)
	}
	return v, nil
}
