package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadPlanCSV(t *testing.T) {
	const src = `kind,a,b,c
# an unreliable fortnight
loss,0.02
delay,0.05,4
dup,0.001
retry,1,8,30
seed,42
partition,100,200,0-3
partition,300,400,8;10;12-14
`
	p, err := ReadPlanCSV(strings.NewReader(src), 16)
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Loss: 0.02, DelayProb: 0.05, DelayMax: 4, DupProb: 0.001,
		RetryBase: 1, RetryCap: 8, Timeout: 30, Seed: 42,
		Partitions: []Partition{
			{Start: 100, End: 200, Members: []int{0, 1, 2, 3}},
			{Start: 300, End: 400, Members: []int{8, 10, 12, 13, 14}},
		},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("plan mismatch:\n got %+v\nwant %+v", p, want)
	}
}

func TestReadPlanJSONL(t *testing.T) {
	const src = `{"loss": 0.02}
# comment
{"delay_prob": 0.05, "delay_max": 4}
{"dup": 0.001}
{"retry_base": 1, "retry_cap": 8, "timeout": 30, "seed": 42}

{"partition": {"start": 100, "end": 200, "members": [0, 1, 2, 3]}}
{"partition": {"start": 300, "end": 400, "ranges": "8;10;12-14"}}
`
	p, err := ReadPlanJSONL(strings.NewReader(src), 16)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := ReadPlanCSV(strings.NewReader(
		"loss,0.02\ndelay,0.05,4\ndup,0.001\nretry,1,8,30\nseed,42\npartition,100,200,0-3\npartition,300,400,8;10;12-14\n"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, csv) {
		t.Fatalf("jsonl and csv forms of the same plan disagree:\n jsonl %+v\n csv   %+v", p, csv)
	}
}

// Every malformed input names its source line.
func TestPlanLoaderLineNumbers(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		jsonl              bool
	}{
		{"csv bad prob", "loss,0.1\ndelay,2,4\n", "line 2", false},
		{"csv bad arity", "loss,0.1\ndup,0.1,9\n", "line 2", false},
		{"csv unknown kind", "loss,0.1\nchaos,1\n", "line 2", false},
		{"csv backwards range", "partition,0,10,9-3\n", "line 1", false},
		{"csv invalid window maps to its line", "loss,0.1\npartition,50,50,0-3\n", "line 2", false},
		{"csv isolating partition maps to its line", "loss,0.1\npartition,0,10,0-15\n", "line 2", false},
		{"csv retry cap below base", "retry,9,2,30\n", "RetryCap", false},
		{"jsonl bad json", "{\"loss\":0.1}\n{broken\n", "line 2", true},
		{"jsonl unknown field", "{\"loss\":0.1}\n{\"chaos\":1}\n", "line 2", true},
		{"jsonl empty directive", "{\"loss\":0.1}\n{}\n", "line 2", true},
		{"jsonl trailing data", "{\"loss\":0.1} 7\n", "line 1", true},
		{"jsonl partition missing bounds", "{\"partition\":{\"members\":[1]}}\n", "line 1", true},
		{"jsonl partition members and ranges", "{\"partition\":{\"start\":0,\"end\":9,\"members\":[1],\"ranges\":\"2\"}}\n", "line 1", true},
		{"jsonl isolating partition maps to its line", "{\"loss\":0.1}\n{\"partition\":{\"start\":0,\"end\":9,\"ranges\":\"0-15\"}}\n", "line 2", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.jsonl {
				_, err = ReadPlanJSONL(strings.NewReader(tc.src), 16)
			} else {
				_, err = ReadPlanCSV(strings.NewReader(tc.src), 16)
			}
			if err == nil {
				t.Fatalf("accepted malformed plan %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name %q", err, tc.wantSub)
			}
		})
	}
}

func TestLoadPlanFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "plan.csv")
	if err := os.WriteFile(csvPath, []byte("loss,0.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlanFile(csvPath, 8)
	if err != nil || p.Loss != 0.1 {
		t.Fatalf("csv load: plan %+v err %v", p, err)
	}
	jPath := filepath.Join(dir, "plan.jsonl")
	if err := os.WriteFile(jPath, []byte(`{"dup": 0.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, err = LoadPlanFile(jPath, 8); err != nil || p.DupProb != 0.25 {
		t.Fatalf("jsonl load: plan %+v err %v", p, err)
	}
	if _, err = LoadPlanFile(filepath.Join(dir, "plan.yaml"), 8); err == nil {
		t.Fatal("accepted unknown extension")
	}
	if _, err = LoadPlanFile(filepath.Join(dir, "absent.csv"), 8); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("0-2;7 9-10")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 7, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for _, bad := range []string{"", "x", "3-1", "1-9999999", "1;;x"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (*Plan)(nil).Validate(8); err != nil {
		t.Fatalf("nil plan must validate: %v", err)
	}
	if (&Plan{}).Active() || (*Plan)(nil).Active() {
		t.Fatal("zero/nil plan reports active")
	}
	good := &Plan{Loss: 0.5, DelayProb: 0.1, DelayMax: 3,
		Partitions: []Partition{{Start: 0, End: 5, Members: []int{1, 2}}}}
	if err := good.Validate(8); err != nil {
		t.Fatal(err)
	}
	if !good.Active() {
		t.Fatal("plan with faults reports inactive")
	}
	bad := []*Plan{
		{Loss: 1},
		{Loss: -0.1},
		{DelayProb: 0.5},
		{DelayMax: -1},
		{RetryBase: -1},
		{RetryBase: 9, RetryCap: 2},
		{Partitions: []Partition{{Start: 5, End: 5, Members: []int{1}}}},
		{Partitions: []Partition{{Start: 0, End: 5}}},
		{Partitions: []Partition{{Start: 0, End: 5, Members: []int{0, 1, 2, 3, 4, 5, 6, 7}}}},
		{Partitions: []Partition{{Start: 0, End: 5, Members: []int{8}}}},
	}
	for i, p := range bad {
		if err := p.Validate(8); err == nil {
			t.Fatalf("bad plan %d (%+v) validated", i, p)
		}
	}
}
