package faults

import (
	"bytes"
	"testing"
)

// The loader contract under fuzzing: malformed fault-plan rows and
// directive objects must error (with a line number), never panic, and
// any plan that loads successfully must re-validate cleanly against
// the same fleet size — the loaders never hand the engine a plan that
// Validate would reject.

func checkLoadedPlan(t *testing.T, p *Plan, n int) {
	t.Helper()
	if p == nil {
		t.Fatal("loader returned nil plan without error")
	}
	if err := p.Validate(n); err != nil {
		t.Fatalf("loaded plan fails re-validation: %v", err)
	}
	for _, pr := range []float64{p.Loss, p.DelayProb, p.DupProb} {
		if pr < 0 || pr >= 1 || pr != pr {
			t.Fatalf("loaded probability %v out of [0,1)", pr)
		}
	}
	for i, w := range p.Partitions {
		if len(w.Members) == 0 || len(w.Members) >= n {
			t.Fatalf("partition %d loaded with %d members against fleet %d", i, len(w.Members), n)
		}
	}
}

func FuzzReadPlanCSV(f *testing.F) {
	f.Add([]byte("kind,a,b,c\nloss,0.01\ndelay,0.05,4\n"), 16)
	f.Add([]byte("# plan\nloss,0.1\nretry,1,8,30\nseed,7\n"), 16)
	f.Add([]byte("partition,100,200,0-3\n"), 16)
	f.Add([]byte("partition,100,200,0;2;5-7\ndup,0.001\n"), 16)
	f.Add([]byte("loss,1.5\n"), 16)
	f.Add([]byte("loss,NaN\n"), 16)
	f.Add([]byte("delay,0.5\n"), 16)
	f.Add([]byte("partition,200,100,0-3\n"), 16)
	f.Add([]byte("partition,0,10,0-99\n"), 16)
	f.Add([]byte("partition,0,10,3-1\n"), 16)
	f.Add([]byte("retry,8,1,30\n"), 16)
	f.Add([]byte("bogus,1\n"), 16)
	f.Add([]byte(",\n"), 16)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 2 || n > 1<<12 {
			n = 16 // partitions validate against the fleet; keep it small
		}
		p, err := ReadPlanCSV(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkLoadedPlan(t, p, n)
	})
}

func FuzzReadPlanJSONL(f *testing.F) {
	f.Add([]byte(`{"loss": 0.01}`), 16)
	f.Add([]byte("{\"delay_prob\":0.05,\"delay_max\":4}\n{\"dup\":0.001}\n"), 16)
	f.Add([]byte(`{"retry_base":1,"retry_cap":8,"timeout":30,"seed":7}`), 16)
	f.Add([]byte(`{"partition":{"start":100,"end":200,"members":[0,1,2]}}`), 16)
	f.Add([]byte(`{"partition":{"start":100,"end":200,"ranges":"0-3;5"}}`), 16)
	f.Add([]byte(`{"partition":{"start":100,"end":200}}`), 16)
	f.Add([]byte(`{"partition":{"start":100,"end":200,"members":[0],"ranges":"1"}}`), 16)
	f.Add([]byte(`{"loss":2}`), 16)
	f.Add([]byte(`{}`), 16)
	f.Add([]byte(`{"unknown":1}`), 16)
	f.Add([]byte(`{"loss":0.1} trailing`), 16)
	f.Add([]byte("{"), 16)
	f.Add([]byte("null"), 16)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 2 || n > 1<<12 {
			n = 16
		}
		p, err := ReadPlanJSONL(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		checkLoadedPlan(t, p, n)
	})
}
