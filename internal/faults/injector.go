package faults

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/task"
)

// Draw salts: each randomised decision kind gets its own keyed stream
// so the loss, delay and duplication draws of one message are
// independent.
const (
	saltLoss = iota + 1
	saltDelay
	saltDelayK
	saltDup
	saltDupK
	saltRetry
)

// Membership is the up-set view the injector needs at retry time (a
// retry to a resource that has since left the system fails without
// consuming a loss draw). *dynamic.UpSet satisfies it.
type Membership interface{ Contains(r int) bool }

// Counters are the injector's cumulative fault totals.
type Counters struct {
	Lost             int64 // messages lost on first send (entered the ledger)
	Delayed          int64 // messages parked in the delay wheel
	Duplicated       int64 // duplicate copies spawned
	Deduped          int64 // duplicate copies dropped by the dedup table
	Retries          int64 // retry attempts made from the ledger
	Timeouts         int64 // ledger tasks that gave up and re-homed at their source
	PartitionBlocked int64 // messages bounced at a partition cut
}

// flight is one ledger entry: a lost migration awaiting retry.
type flight struct {
	tk       task.Task
	src      int32 // source resource (re-home target on timeout)
	dest     int32
	attempt  int32 // retries already made
	nextTry  int32 // round of the next retry attempt
	deadline int32 // round at which the task re-homes at src
	token    uint64
}

// wheelRec is one delay-wheel entry: a migration (or duplicate copy)
// due to arrive at round `due`. Duplicates carry token 0, which never
// matches an armed dedup slot, so every copy is identified and
// dropped on arrival.
type wheelRec struct {
	tk    task.Task
	src   int32 // source resource at park time (trace-record provenance)
	dest  int32
	due   int32
	sent  int32  // round the message entered the wheel (delivery latency base)
	token uint64 // 0 = duplicate copy
}

// HookKind names the sequential fault events the trace hook observes:
// a first-send loss entering the retry ledger, a message parked in the
// delay wheel, and each retry attempt made from the ledger.
type HookKind uint8

const (
	HookLoss HookKind = iota + 1
	HookDelay
	HookRetry
)

// DueKind tags one entry of Tick's due-delivery batch with how it
// resolved: a delay-wheel delivery, a successful retry, or a timeout
// re-home at the source.
type DueKind uint8

const (
	DueDelay DueKind = iota + 1
	DueRetry
	DueTimeout
)

// DueRecord is the per-delivery annotation aligned index-for-index
// with the batch Tick returns: how the message resolved, how many
// rounds it was held, and how many retry attempts it took.
type DueRecord struct {
	Kind DueKind
	// Src is the move's source resource when it entered the fault layer
	// (a task in flight has no stack location to read back).
	Src     int32
	Latency int32
	Attempt int32
}

// shardScratch buffers one propose shard's fault decisions until the
// sequential Collect merges them in canonical (shard-ascending) order.
type shardScratch struct {
	lost    []flight
	delayed []wheelRec
	dup     []wheelRec
	blocked int64
}

// Injector applies a compiled Plan to the engine's migration traffic.
// FilterShard runs inside the parallel propose phase (disjoint shards,
// disjoint scratch); everything else is sequential engine-loop state.
type Injector struct {
	plan Plan
	seed uint64 // run seed mixed with the plan's fault seed
	n    int

	shards []shardScratch

	ledger []flight
	wheel  [][]wheelRec // ring, indexed by due % len(wheel)

	// pend is the dedup table: pend[id] holds the flight token of task
	// id's pending (lost or delayed) message, 0 when none. Tokens are
	// unique per flight, so a stale wheel entry for a recycled task ID
	// can never deliver.
	pend      []uint64
	nextToken uint64

	// Partition state: group[r] is 0 in the main component and w+1
	// inside active window w. isoBuf/restBuf are the reused delta
	// lists StartRound hands the engine for reachable-set upkeep.
	group      []int32
	oldGroup   []int32
	parted     bool // any window currently active
	isoBuf     []int
	restBuf    []int
	transition map[int]bool // rounds at which some window starts or ends

	due     []core.Migration // Tick's canonical due-delivery batch
	dueInfo []DueRecord      // aligned resolution annotations for due

	// hook, when set, observes the sequential fault events (Collect's
	// losses and delay parks, Tick's retry attempts) in canonical
	// order. Nil when tracing is off — the hot path pays nothing.
	hook func(kind HookKind, round int, tk task.Task, src, dest int32, attempt int32)

	c Counters
}

// SetTraceHook installs the sequential fault-event observer. The hook
// runs inside Collect and Tick — engine-loop context, never a propose
// shard — so observation order is canonical for any worker count.
func (inj *Injector) SetTraceHook(h func(kind HookKind, round int, tk task.Task, src, dest int32, attempt int32)) {
	inj.hook = h
}

// DueInfo returns the resolution annotations for the batch the last
// Tick returned, aligned index-for-index. Valid until the next Tick.
func (inj *Injector) DueInfo() []DueRecord { return inj.dueInfo }

// NewInjector compiles plan for an n-resource fleet split into
// `workers` propose shards. runSeed is the engine's master seed; the
// plan's own Seed decorrelates the fault draws from every other
// stream of the run.
func NewInjector(plan *Plan, n, workers int, runSeed uint64) *Injector {
	p := plan.withDefaults()
	inj := &Injector{
		plan:      p,
		seed:      rng.Hash3(runSeed, p.Seed, 0xfa17, 0),
		n:         n,
		shards:    make([]shardScratch, workers),
		nextToken: 1,
	}
	wheelLen := p.DelayMax + 1
	if p.DupProb > 0 && wheelLen < 2 {
		wheelLen = 2 // duplicate copies arrive at least 1 round late
	}
	inj.wheel = make([][]wheelRec, wheelLen)
	if len(p.Partitions) > 0 {
		inj.group = make([]int32, n)
		inj.oldGroup = make([]int32, n)
		inj.transition = make(map[int]bool, 2*len(p.Partitions))
		for _, w := range p.Partitions {
			inj.transition[w.Start] = true
			inj.transition[w.End] = true
		}
	}
	return inj
}

// Counters returns the cumulative fault totals.
func (inj *Injector) Counters() Counters { return inj.c }

// LedgerSize returns the number of tasks currently awaiting retry.
func (inj *Injector) LedgerSize() int { return len(inj.ledger) }

// Isolated reports whether resource r is inside an active partition
// window this round.
func (inj *Injector) Isolated(r int) bool {
	return inj.parted && inj.group[r] != 0
}

// StartRound recomputes the partition groups for round t and returns
// the resources that became isolated and those whose window ended
// (reused buffers, valid until the next call). The engine applies the
// deltas to its reachable set before dispatching arrivals.
func (inj *Injector) StartRound(t int) (isolated, restored []int) {
	if inj.group == nil || !inj.transition[t] {
		return nil, nil
	}
	inj.group, inj.oldGroup = inj.oldGroup, inj.group
	clear(inj.group)
	inj.parted = false
	for wi, w := range inj.plan.Partitions {
		if w.Start <= t && t < w.End {
			inj.parted = true
			for _, m := range w.Members {
				inj.group[m] = int32(wi + 1)
			}
		}
	}
	inj.isoBuf, inj.restBuf = inj.isoBuf[:0], inj.restBuf[:0]
	for r := 0; r < inj.n; r++ {
		switch {
		case inj.oldGroup[r] == 0 && inj.group[r] != 0:
			inj.isoBuf = append(inj.isoBuf, r)
		case inj.oldGroup[r] != 0 && inj.group[r] == 0:
			inj.restBuf = append(inj.restBuf, r)
		}
	}
	return inj.isoBuf, inj.restBuf
}

// FilterShard applies round t's fault draws to shard i's proposed
// moves and returns the compacted survivors for routing. Lost and
// delayed moves land in the shard's scratch (merged sequentially by
// Collect); cross-partition moves bounce back to their source, the
// domain-local fallback. Safe for concurrent calls on distinct i.
// Tasks are already off their source stacks, but their locations
// still point at the source until delivery — that is where src comes
// from.
func (inj *Injector) FilterShard(i, t int, s *core.State, moves []core.Migration) []core.Migration {
	p := &inj.plan
	if !inj.parted && p.Loss == 0 && p.DelayProb == 0 && p.DupProb == 0 {
		return moves
	}
	sc := &inj.shards[i]
	kept := moves[:0]
	for _, mv := range moves {
		id := uint64(mv.Task.ID)
		src := int32(s.Location(int(mv.Task.ID)))
		if inj.parted && inj.group[src] != inj.group[mv.Dest] {
			// Fail fast at the cut: the move stays in its own
			// component by returning to its source.
			mv.Dest = src
			sc.blocked++
			kept = append(kept, mv)
			continue
		}
		if p.Loss > 0 && rng.HashFloat3(inj.seed+saltLoss, id, uint64(t), 0) < p.Loss {
			sc.lost = append(sc.lost, flight{tk: mv.Task, src: src, dest: mv.Dest})
			continue
		}
		if p.DelayProb > 0 && rng.HashFloat3(inj.seed+saltDelay, id, uint64(t), 0) < p.DelayProb {
			k := 1 + int32(rng.Hash3(inj.seed+saltDelayK, id, uint64(t), 0)%uint64(p.DelayMax))
			sc.delayed = append(sc.delayed, wheelRec{tk: mv.Task, src: src, dest: mv.Dest, due: int32(t) + k, sent: int32(t)})
			continue
		}
		if p.DupProb > 0 && rng.HashFloat3(inj.seed+saltDup, id, uint64(t), 0) < p.DupProb {
			// The original delivers now; a copy arrives late and the
			// dedup table drops it.
			dmax := uint64(len(inj.wheel) - 1)
			k := 1 + int32(rng.Hash3(inj.seed+saltDupK, id, uint64(t), 0)%dmax)
			sc.dup = append(sc.dup, wheelRec{tk: mv.Task, src: src, dest: mv.Dest, due: int32(t) + k})
		}
		kept = append(kept, mv)
	}
	return kept
}

// Collect merges the shard scratches into the ledger and delay wheel
// and marks the held tasks in flight. The merge is kind-major (every
// shard's lost list, then every delayed list, then the duplicates),
// each kind in shard-ascending order: contiguous shard chunks of the
// canonical propose batch then yield one global order per kind for
// any worker count, keeping token assignment and the in-flight
// weight-accumulation order — a float sum — bit-identical across
// worker counts. Sequential, after the deliver barrier.
func (inj *Injector) Collect(t int, s *core.State) {
	p := &inj.plan
	for i := range inj.shards {
		sc := &inj.shards[i]
		inj.c.PartitionBlocked += sc.blocked
		sc.blocked = 0
		for _, fl := range sc.lost {
			fl.attempt = 0
			fl.nextTry = int32(t + p.RetryBase)
			fl.deadline = int32(t + p.Timeout)
			fl.token = inj.nextToken
			inj.nextToken++
			inj.arm(fl.tk.ID, fl.token)
			s.MarkInFlight(fl.tk)
			inj.ledger = append(inj.ledger, fl)
			inj.c.Lost++
			if inj.hook != nil {
				inj.hook(HookLoss, t, fl.tk, fl.src, fl.dest, 0)
			}
		}
		sc.lost = sc.lost[:0]
	}
	for i := range inj.shards {
		sc := &inj.shards[i]
		for _, wr := range sc.delayed {
			wr.token = inj.nextToken
			inj.nextToken++
			inj.arm(wr.tk.ID, wr.token)
			s.MarkInFlight(wr.tk)
			slot := int(wr.due) % len(inj.wheel)
			inj.wheel[slot] = append(inj.wheel[slot], wr)
			inj.c.Delayed++
			if inj.hook != nil {
				inj.hook(HookDelay, t, wr.tk, wr.src, wr.dest, 0)
			}
		}
		sc.delayed = sc.delayed[:0]
	}
	for i := range inj.shards {
		sc := &inj.shards[i]
		for _, wr := range sc.dup {
			slot := int(wr.due) % len(inj.wheel)
			inj.wheel[slot] = append(inj.wheel[slot], wr)
			inj.c.Duplicated++
		}
		sc.dup = sc.dup[:0]
	}
}

// arm records task id's pending flight token in the dedup table,
// growing it as the task-ID space grows.
func (inj *Injector) arm(id int, token uint64) {
	for id >= len(inj.pend) {
		inj.pend = append(inj.pend, 0)
	}
	inj.pend[id] = token
}

// Tick processes round t's due deliveries — the delay-wheel slot,
// ledger retries and timeouts — and returns the canonical due-move
// batch for an extra exchange delivery. up guards retries against
// destinations that have since left the system (the attempt fails
// and backs off without a loss draw). The returned slice is reused
// across rounds. Sequential, after Collect.
func (inj *Injector) Tick(t int, s *core.State, up Membership) []core.Migration {
	inj.due = inj.due[:0]
	inj.dueInfo = inj.dueInfo[:0]
	if len(inj.wheel) > 0 {
		slot := int(uint(t) % uint(len(inj.wheel)))
		pending := inj.wheel[slot][:0]
		for _, wr := range inj.wheel[slot] {
			if int(wr.due) != t {
				pending = append(pending, wr) // lapped entry, not due yet
				continue
			}
			if wr.token == 0 || wr.token != inj.pendToken(wr.tk.ID) {
				inj.c.Deduped++ // duplicate (or superseded) copy
				continue
			}
			inj.pend[wr.tk.ID] = 0
			s.ClearInFlight(wr.tk)
			inj.due = append(inj.due, core.Migration{Task: wr.tk, Dest: wr.dest})
			inj.dueInfo = append(inj.dueInfo, DueRecord{Kind: DueDelay, Src: wr.src, Latency: int32(t) - wr.sent})
		}
		inj.wheel[slot] = pending
	}
	live := inj.ledger[:0]
	for _, fl := range inj.ledger {
		switch {
		case t >= int(fl.deadline):
			// Give up: the task re-homes at its source. If the source
			// has since gone down, the engine's bounce step evacuates
			// it through the configured re-home policy.
			inj.pend[fl.tk.ID] = 0
			s.ClearInFlight(fl.tk)
			inj.due = append(inj.due, core.Migration{Task: fl.tk, Dest: fl.src})
			inj.dueInfo = append(inj.dueInfo, DueRecord{Kind: DueTimeout, Src: fl.src, Latency: int32(t) - (fl.deadline - int32(inj.plan.Timeout)), Attempt: fl.attempt})
			inj.c.Timeouts++
		case t >= int(fl.nextTry):
			inj.c.Retries++
			fl.attempt++
			if inj.hook != nil {
				inj.hook(HookRetry, t, fl.tk, fl.src, fl.dest, fl.attempt)
			}
			destUp := up == nil || up.Contains(int(fl.dest))
			if destUp && (inj.parted && inj.group[fl.src] != inj.group[fl.dest]) {
				destUp = false // the cut now crosses this link
			}
			if destUp && rng.HashFloat3(inj.seed+saltRetry, uint64(fl.tk.ID), uint64(t), uint64(fl.attempt)) >= inj.plan.Loss {
				inj.pend[fl.tk.ID] = 0
				s.ClearInFlight(fl.tk)
				inj.due = append(inj.due, core.Migration{Task: fl.tk, Dest: fl.dest})
				inj.dueInfo = append(inj.dueInfo, DueRecord{Kind: DueRetry, Src: fl.src, Latency: int32(t) - (fl.deadline - int32(inj.plan.Timeout)), Attempt: fl.attempt})
				break
			}
			// Lost again (or the destination is unreachable): back off
			// exponentially, capped.
			gap := inj.plan.RetryBase << uint(fl.attempt)
			if gap > inj.plan.RetryCap {
				gap = inj.plan.RetryCap
			}
			fl.nextTry = int32(t + gap)
			live = append(live, fl)
		default:
			live = append(live, fl)
		}
	}
	inj.ledger = live
	return inj.due
}

// pendToken returns task id's armed flight token (0 = none).
func (inj *Injector) pendToken(id int) uint64 {
	if id < 0 || id >= len(inj.pend) {
		return 0
	}
	return inj.pend[id]
}
