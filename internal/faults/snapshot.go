package faults

import (
	"fmt"

	"repro/internal/snapshot"
)

// Checkpoint support: the injector's sequential engine-loop state —
// the in-flight ledger, the delay wheel (every slot, in-slot order
// preserved: Tick walks slots verbatim, so order is semantic), the
// dedup table, the token allocator, the partition groups and the
// cumulative counters — serializes in full. The per-shard scratch,
// the transition map and the delta buffers are transient: they are
// rebuilt by NewInjector or repopulated within a round. The partition
// group vector must be saved rather than recomputed because
// StartRound only refreshes it on window-transition rounds; a resume
// mid-window would otherwise run with a stale (empty) group map.

// EncodeSnapshot writes the injector's persistent state as one
// section body (the caller brackets it with Begin/End).
func (inj *Injector) EncodeSnapshot(enc *snapshot.Encoder) {
	enc.Uint32(uint32(len(inj.ledger)))
	for _, f := range inj.ledger {
		enc.Int(f.tk.ID)
		enc.Float64(f.tk.Weight)
		enc.Int32(f.src)
		enc.Int32(f.dest)
		enc.Int32(f.attempt)
		enc.Int32(f.nextTry)
		enc.Int32(f.deadline)
		enc.Uint64(f.token)
	}
	enc.Uint32(uint32(len(inj.wheel)))
	for _, slot := range inj.wheel {
		enc.Uint32(uint32(len(slot)))
		for _, wr := range slot {
			enc.Int(wr.tk.ID)
			enc.Float64(wr.tk.Weight)
			enc.Int32(wr.dest)
			enc.Int32(wr.due)
			enc.Uint64(wr.token)
		}
	}
	enc.Uint64s(inj.pend)
	enc.Uint64(inj.nextToken)
	enc.Bool(inj.group != nil)
	if inj.group != nil {
		enc.Int32s(inj.group)
	}
	enc.Bool(inj.parted)
	enc.Int64(inj.c.Lost)
	enc.Int64(inj.c.Delayed)
	enc.Int64(inj.c.Duplicated)
	enc.Int64(inj.c.Deduped)
	enc.Int64(inj.c.Retries)
	enc.Int64(inj.c.Timeouts)
	enc.Int64(inj.c.PartitionBlocked)
}

// DecodeSnapshot restores the persistent state written by
// EncodeSnapshot into a freshly constructed injector (same plan, same
// fleet size).
func (inj *Injector) DecodeSnapshot(sec *snapshot.Section) error {
	nLedger := int(sec.Uint32())
	inj.ledger = inj.ledger[:0]
	for i := 0; i < nLedger && sec.Err() == nil; i++ {
		var f flight
		f.tk.ID = sec.Int()
		f.tk.Weight = sec.Float64()
		f.src = sec.Int32()
		f.dest = sec.Int32()
		f.attempt = sec.Int32()
		f.nextTry = sec.Int32()
		f.deadline = sec.Int32()
		f.token = sec.Uint64()
		inj.ledger = append(inj.ledger, f)
	}
	nWheel := int(sec.Uint32())
	if sec.Err() == nil && nWheel != len(inj.wheel) {
		return fmt.Errorf("faults: snapshot wheel has %d slots, plan compiles to %d", nWheel, len(inj.wheel))
	}
	for i := 0; i < nWheel && sec.Err() == nil; i++ {
		nSlot := int(sec.Uint32())
		inj.wheel[i] = inj.wheel[i][:0]
		for j := 0; j < nSlot && sec.Err() == nil; j++ {
			var wr wheelRec
			wr.tk.ID = sec.Int()
			wr.tk.Weight = sec.Float64()
			wr.dest = sec.Int32()
			wr.due = sec.Int32()
			wr.token = sec.Uint64()
			inj.wheel[i] = append(inj.wheel[i], wr)
		}
	}
	inj.pend = sec.Uint64s(inj.pend)
	inj.nextToken = sec.Uint64()
	hasGroup := sec.Bool()
	if sec.Err() == nil && hasGroup != (inj.group != nil) {
		return fmt.Errorf("faults: snapshot partition state (%v) does not match the plan (%v)", hasGroup, inj.group != nil)
	}
	if hasGroup {
		inj.group = sec.Int32s(inj.group)
		if sec.Err() == nil && len(inj.group) != inj.n {
			return fmt.Errorf("faults: snapshot partition groups cover %d resources, fleet has %d", len(inj.group), inj.n)
		}
	}
	inj.parted = sec.Bool()
	inj.c.Lost = sec.Int64()
	inj.c.Delayed = sec.Int64()
	inj.c.Duplicated = sec.Int64()
	inj.c.Deduped = sec.Int64()
	inj.c.Retries = sec.Int64()
	inj.c.Timeouts = sec.Int64()
	inj.c.PartitionBlocked = sec.Int64()
	return sec.Err()
}
