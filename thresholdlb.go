// Package thresholdlb is the public API of the threshold
// load-balancing library, a faithful implementation of
//
//	Berenbrink, Friedetzky, Mallmann-Trenn, Meshkinfamfard, Wastell:
//	"Threshold Load Balancing with Weighted Tasks"
//	(IPPS 2015; JPDC 113:218–226, 2018).
//
// n resources form an undirected graph; m ≥ n weighted tasks start in
// an arbitrary placement; every resource has the same threshold. The
// library runs either the paper's resource-controlled protocol
// (Algorithm 5.1, overloaded resources push excess tasks along a
// random walk) or its user-controlled protocol (Algorithm 6.1, tasks
// on overloaded resources of a complete graph migrate independently),
// and reports the balancing time.
//
// A minimal run:
//
//	g := thresholdlb.CompleteGraph(100)
//	sc := thresholdlb.Scenario{
//	    Graph:   g,
//	    Weights: thresholdlb.UnitWeights(1000),
//	    Epsilon: 0.2,
//	    Protocol: thresholdlb.UserBased,
//	    Alpha:   1,
//	    Seed:    42,
//	}
//	res, err := sc.Run()
//
// The heavy lifting lives in the internal packages (graph, walk, core,
// …); this package re-exports the pieces a downstream user needs.
package thresholdlb

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/walk"
)

// Graph is an immutable undirected resource graph (CSR form).
type Graph = graph.Graph

// Result reports a completed balancing run.
type Result = core.RunResult

// CompleteGraph returns K_n — the topology of the paper's
// user-controlled analysis and Section 7 simulations.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// GridGraph returns the rows×cols grid (no wraparound).
func GridGraph(rows, cols int) *Graph { return graph.Grid2D(rows, cols, false) }

// TorusGraph returns the rows×cols torus.
func TorusGraph(rows, cols int) *Graph { return graph.Grid2D(rows, cols, true) }

// HypercubeGraph returns the dim-dimensional hypercube (2^dim nodes).
func HypercubeGraph(dim int) *Graph { return graph.Hypercube(dim) }

// ExpanderGraph returns a random d-regular graph, an expander with high
// probability for d ≥ 3.
func ExpanderGraph(n, d int, seed uint64) *Graph {
	return graph.RandomRegular(n, d, rng.NewSeeded(seed))
}

// ErdosRenyiGraph returns a connected G(n,p) sample (resampling until
// connected, as the paper's Table 1 assumes p above the connectivity
// threshold).
func ErdosRenyiGraph(n int, p float64, seed uint64) *Graph {
	r := rng.NewSeeded(seed)
	return graph.GenerateConnected(1000, func() *Graph { return graph.ErdosRenyi(n, p, r) })
}

// CliquePendantGraph returns the Observation 8 lower-bound family: a
// clique on n−1 nodes plus one pendant node attached by k edges.
func CliquePendantGraph(n, k int) *Graph { return graph.CliquePendant(n, k) }

// CustomGraph builds a graph from an explicit edge list.
func CustomGraph(name string, n int, edges [][2]int) *Graph { return graph.Build(name, n, edges) }

// UnitWeights returns m unit weights (the classical uniform-ball
// setting).
func UnitWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TwoPointWeights returns m weights of which k are heavy and the rest
// are 1 — the Figure 1 workload.
func TwoPointWeights(m, k int, heavy float64) []float64 {
	return task.TwoPoint{Heavy: heavy, K: k}.Weights(m, rng.NewSeeded(0))
}

// ParetoWeights returns m heavy-tailed Pareto(1, alpha) weights capped
// at cap (0 = uncapped), drawn deterministically from seed.
func ParetoWeights(m int, alpha, cap float64, seed uint64) []float64 {
	return task.Pareto{Alpha: alpha, Cap: cap}.Weights(m, rng.NewSeeded(seed))
}

// ExponentialWeights returns m weights distributed 1+Exp with the given
// mean ≥ 1, drawn deterministically from seed.
func ExponentialWeights(m int, mean float64, seed uint64) []float64 {
	return task.Exponential{Mean: mean}.Weights(m, rng.NewSeeded(seed))
}

// ProtocolKind selects the migration protocol.
type ProtocolKind int

// The protocol families of the paper plus the conclusion's extensions.
const (
	// ResourceBased is Algorithm 5.1 on arbitrary graphs.
	ResourceBased ProtocolKind = iota
	// UserBased is Algorithm 6.1; the paper analyses it on complete
	// graphs. Run returns an error for non-complete graphs — use
	// UserBasedGraph there.
	UserBased
	// UserBasedGraph generalises Algorithm 6.1 to arbitrary graphs
	// (destinations are random neighbours).
	UserBasedGraph
	// MixedBased alternates ResourceBased and UserBasedGraph rounds —
	// the mixed protocol suggested in the paper's conclusion.
	MixedBased
)

// String names the protocol.
func (p ProtocolKind) String() string {
	switch p {
	case ResourceBased:
		return "resource-based"
	case UserBased:
		return "user-based"
	case UserBasedGraph:
		return "user-based-graph"
	case MixedBased:
		return "mixed"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(p))
	}
}

// Scenario describes one balancing problem. Zero values select the
// paper's defaults where they exist.
type Scenario struct {
	// Graph is the resource topology (required).
	Graph *Graph
	// Weights are the task weights, each ≥ 1 (required).
	Weights []float64
	// Placement maps task index → initial resource; nil places every
	// task on resource 0 (the Section 7 initial condition).
	Placement []int
	// Epsilon selects the threshold: > 0 gives the above-average
	// threshold (1+ε)W/n + wmax; 0 gives the tight threshold
	// (W/n + 2·wmax for resource-based, W/n + wmax for user-based).
	Epsilon float64
	// Protocol selects the migration rule.
	Protocol ProtocolKind
	// Alpha is the user-protocol migration constant; 0 means 1 (the
	// paper's simulation value).
	Alpha float64
	// LazyWalk makes the resource-protocol walk 1/2-lazy (recommended
	// on bipartite graphs such as grids and hypercubes).
	LazyWalk bool
	// Seed fixes all randomness; runs are fully deterministic.
	Seed uint64
	// MaxRounds caps the run (0 = library default).
	MaxRounds int
	// RecordPotential stores the potential trace in the result.
	RecordPotential bool
	// EstimatedThresholds derives the average load by decentralised
	// diffusion of the initial loads (the paper's footnote 1) instead
	// of using the oracle W/n. Requires Epsilon > 0 so the estimation
	// error is absorbed by the threshold slack.
	EstimatedThresholds bool
	// OnRound, if non-nil, is called after every round with the round
	// number (1-based) and a copy of the per-resource load vector —
	// the hook for live monitoring (see MeasureImbalance).
	OnRound func(round int, loads []float64)
}

// Run executes the scenario and returns the balancing statistics.
func (sc Scenario) Run() (Result, error) {
	if sc.Graph == nil {
		return Result{}, errors.New("thresholdlb: Scenario.Graph is required")
	}
	n := sc.Graph.N()
	if n == 0 {
		return Result{}, errors.New("thresholdlb: graph has no resources")
	}
	if len(sc.Weights) == 0 {
		return Result{}, errors.New("thresholdlb: Scenario.Weights is required")
	}
	for i, w := range sc.Weights {
		if !task.ValidWeight(w) {
			return Result{}, fmt.Errorf("thresholdlb: weight %v at index %d is below 1 or not finite (rescale so wmin ≥ 1)", w, i)
		}
	}
	if !sc.Graph.Connected() {
		return Result{}, errors.New("thresholdlb: graph must be connected")
	}
	ts := task.NewSet(sc.Weights)
	placement := sc.Placement
	if placement == nil {
		placement = make([]int, ts.M())
	} else if len(placement) != ts.M() {
		return Result{}, fmt.Errorf("thresholdlb: placement has %d entries for %d tasks", len(placement), ts.M())
	}
	for i, r := range placement {
		if r < 0 || r >= n {
			return Result{}, fmt.Errorf("thresholdlb: task %d placed on invalid resource %d", i, r)
		}
	}
	alpha := sc.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 {
		return Result{}, errors.New("thresholdlb: Alpha must be positive")
	}
	if sc.Epsilon < 0 {
		return Result{}, errors.New("thresholdlb: Epsilon must be non-negative")
	}

	var policy core.Thresholds
	switch {
	case sc.EstimatedThresholds:
		if sc.Epsilon <= 0 {
			return Result{}, errors.New("thresholdlb: EstimatedThresholds requires Epsilon > 0 to absorb estimation error")
		}
		loads := make([]float64, n)
		for id, r := range placement {
			loads[r] += ts.Weight(id)
		}
		kernel := walk.NewLazy(walk.NewMaxDegree(sc.Graph))
		est, _ := diffusion.RunUntil(kernel, loads, 0.25*sc.Epsilon, 10_000_000)
		policy = core.FromEstimates(est, sc.Epsilon, ts.WMax())
	case sc.Epsilon > 0:
		policy = core.AboveAverage{Eps: sc.Epsilon}
	case sc.Protocol == ResourceBased || sc.Protocol == MixedBased:
		policy = core.TightResource{}
	default:
		policy = core.TightUser{}
	}

	mkKernel := func() walk.Kernel {
		var k walk.Kernel = walk.NewMaxDegree(sc.Graph)
		if sc.LazyWalk {
			k = walk.NewLazy(k)
		}
		return k
	}
	var proto core.Protocol
	switch sc.Protocol {
	case ResourceBased:
		proto = core.ResourceControlled{Kernel: mkKernel()}
	case UserBased:
		if !isComplete(sc.Graph) {
			return Result{}, errors.New("thresholdlb: UserBased requires the complete graph (the paper's model); use UserBasedGraph for other topologies")
		}
		proto = core.UserControlled{Alpha: alpha}
	case UserBasedGraph:
		proto = core.UserControlledGraph{Alpha: alpha}
	case MixedBased:
		proto = core.Mixed{
			A:      core.ResourceControlled{Kernel: mkKernel()},
			B:      core.UserControlledGraph{Alpha: alpha},
			Period: 2,
		}
	default:
		return Result{}, fmt.Errorf("thresholdlb: unknown protocol %v", sc.Protocol)
	}

	state := core.NewState(sc.Graph, ts, placement, policy, sc.Seed)
	opts := core.RunOptions{
		MaxRounds:       sc.MaxRounds,
		RecordPotential: sc.RecordPotential,
	}
	if sc.OnRound != nil {
		opts.OnRound = func(s *core.State, round int, _ core.StepStats) {
			sc.OnRound(round, s.Loads())
		}
	}
	res := core.Run(state, proto, opts)
	return res, nil
}

// Imbalance summarises how uneven a load vector is; see
// MeasureImbalance.
type Imbalance = metrics.Snapshot

// MeasureImbalance computes standard imbalance measures (max−avg gap,
// coefficient of variation, Gini coefficient, overloaded fraction) of
// a load vector against a uniform threshold.
func MeasureImbalance(loads []float64, threshold float64) Imbalance {
	return metrics.Measure(loads, threshold)
}

func isComplete(g *Graph) bool {
	n := g.N()
	for v := 0; v < n; v++ {
		if g.Degree(v) != n-1 {
			return false
		}
	}
	return true
}

// MixingTime returns the exact 1/4-total-variation mixing time of the
// (lazy) max-degree walk on g, maximised over a set of representative
// start vertices — the quantity τ(G) in Theorem 3.
func MixingTime(g *Graph) int {
	k := walk.NewLazy(walk.NewMaxDegree(g))
	return walk.MixingTimeTV(k, walk.DefaultStarts(k), walk.DefaultMixingEps, 10_000_000)
}

// MaxHittingTime returns H(G) for the max-degree walk on g — the
// quantity in Theorem 7. O(n · solve); intended for n up to a few
// thousand.
func MaxHittingTime(g *Graph) float64 {
	k := walk.NewMaxDegree(g)
	return walk.MaxHittingTime(k, 1e-8, 2_000_000)
}

// SpectralGap estimates the spectral gap µ of the lazy max-degree walk.
func SpectralGap(g *Graph, seed uint64) float64 {
	k := walk.NewLazy(walk.NewMaxDegree(g))
	return walk.SpectralGap(k, 20000, rng.NewSeeded(seed))
}
