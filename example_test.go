package thresholdlb_test

import (
	"fmt"

	lb "repro"
)

// The smallest complete use of the library: balance unit tasks on a
// complete graph with the paper's Section 7 parameters.
func ExampleScenario_Run() {
	sc := lb.Scenario{
		Graph:    lb.CompleteGraph(50),
		Weights:  lb.UnitWeights(500),
		Epsilon:  0.2,
		Protocol: lb.UserBased,
		Alpha:    1,
		Seed:     7,
	}
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("balanced:", res.Balanced)
	fmt.Println("rounds under 50:", res.Rounds < 50)
	// Output:
	// balanced: true
	// rounds under 50: true
}

// Resource-controlled balancing on a sparse topology, with the walk
// quantities Theorem 3 and 7 are stated in.
func ExampleScenario_Run_resourceBased() {
	g := lb.TorusGraph(6, 6)
	sc := lb.Scenario{
		Graph:    g,
		Weights:  lb.TwoPointWeights(144, 4, 10),
		Epsilon:  0.5,
		Protocol: lb.ResourceBased,
		LazyWalk: true,
		Seed:     3,
	}
	res, err := sc.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("balanced:", res.Balanced)
	fmt.Println("hitting time is finite:", lb.MaxHittingTime(g) > 0)
	// Output:
	// balanced: true
	// hitting time is finite: true
}

// Imbalance metrics summarise a load vector against a threshold.
func ExampleMeasureImbalance() {
	loads := []float64{9, 3, 3, 1}
	im := lb.MeasureImbalance(loads, 5)
	fmt.Printf("gap=%.0f overloaded=%d gini=%.2f\n", im.Gap, im.Overloaded, im.Gini)
	// Output:
	// gap=5 overloaded=1 gini=0.38
}
